// Torture tests for the wfc::wf wait-free data plane: epoch reclamation
// (deferral until guards exit, drain-to-zero under churn), the lock-free
// hash map (exactness, same-key convergence, the announce/helping path,
// tombstone reuse), the CLOCK cache (hit+miss reconciliation under
// multi-threaded churn, pin-skipping eviction, coldest-first victim
// choice, shed/clear, detached-handle overflow), and the sharded stats
// primitives (fold exactness once writers are quiescent).
//
// Thread counts deliberately oversubscribe small machines: the interesting
// interleavings (CAS races, helping, evict-vs-pin) come from preemption,
// not parallel speedup.  These tests also run under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "wf/clock_cache.hpp"
#include "wf/counter.hpp"
#include "wf/epoch.hpp"
#include "wf/hashmap.hpp"
#include "wf/telemetry.hpp"

namespace wfc::wf {
namespace {

// ---------------------------------------------------------------------------
// Epoch

TEST(Epoch, RetireDefersWhileAGuardIsPinned) {
  static std::atomic<bool> freed{false};
  freed.store(false);

  std::atomic<bool> retired{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    Epoch::Guard guard(Epoch::global());
    retired.store(true);
    while (!release.load()) std::this_thread::yield();
    // Guard still open: the retiree must not have been freed yet.
    EXPECT_FALSE(freed.load());
  });

  while (!retired.load()) std::this_thread::yield();
  // Retire from this thread while the reader is pinned in an older epoch.
  Epoch::global().retire(&freed, [](void* p) {
    static_cast<std::atomic<bool>*>(p)->store(true);
  });
  for (int i = 0; i < 8; ++i) Epoch::global().collect();
  EXPECT_FALSE(freed.load()) << "freed under a live guard";

  release.store(true);
  reader.join();
  for (int i = 0; i < 8; ++i) Epoch::global().collect();
  EXPECT_TRUE(freed.load()) << "never freed after all guards exited";
}

TEST(Epoch, GuardsAreReentrant) {
  Epoch::Guard outer(Epoch::global());
  {
    Epoch::Guard inner(Epoch::global());
    Epoch::Guard innermost(Epoch::global());
  }
  // Still pinned here; a retire + collect must not free yet.
  static std::atomic<bool> freed{false};
  freed.store(false);
  Epoch::global().retire(&freed, [](void* p) {
    static_cast<std::atomic<bool>*>(p)->store(true);
  });
  for (int i = 0; i < 8; ++i) Epoch::global().collect();
  EXPECT_FALSE(freed.load());
}

TEST(Epoch, PendingDrainsToZeroAfterChurn) {
  constexpr int kThreads = 4;
  constexpr int kRetires = 2'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (int i = 0; i < kRetires; ++i) {
        Epoch::Guard guard(Epoch::global());
        Epoch::global().retire(new int(i));
      }
    });
  }
  for (auto& t : ts) t.join();
  // All writers quiescent: a few collects must advance past every stamped
  // epoch and free everything (exited threads' limbo lists included).
  for (int i = 0; i < 8; ++i) Epoch::global().collect();
  EXPECT_EQ(Epoch::global().pending(), 0u);
}

// ---------------------------------------------------------------------------
// HashMap

using IntMap = HashMap<std::uint64_t, std::uint64_t>;

TEST(WfHashMap, InsertFindExactSequential) {
  IntMap::Options opt;
  opt.min_slots = 256;
  IntMap map(std::move(opt));
  Epoch::Guard guard(Epoch::global());
  for (std::uint64_t k = 0; k < 100; ++k) {
    bool inserted = false;
    IntMap::Node* n = map.insert_or_get(
        k, [&] { return new IntMap::Node{k, k * 10}; }, &inserted);
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(inserted);
  }
  EXPECT_EQ(map.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    IntMap::Node* n = map.find(k);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, k * 10);
  }
  EXPECT_EQ(map.find(12345), nullptr);
}

TEST(WfHashMap, EraseTombstonesAndSlotsAreReused) {
  IntMap::Options opt;
  opt.min_slots = 64;
  IntMap map(std::move(opt));
  Epoch::Guard guard(Epoch::global());
  // Fill every slot so re-insertion MUST go through tombstones.
  for (std::uint64_t k = 0; k < 64; ++k) {
    bool inserted = false;
    ASSERT_NE(map.insert_or_get(
                  k, [&] { return new IntMap::Node{k, k}; }, &inserted),
              nullptr);
  }
  EXPECT_EQ(map.size(), 64u);
  for (std::uint64_t k = 0; k < 64; k += 2) EXPECT_TRUE(map.erase(k));
  EXPECT_FALSE(map.erase(0));  // already gone
  EXPECT_EQ(map.size(), 32u);
  for (std::uint64_t k = 0; k < 64; k += 2) EXPECT_EQ(map.find(k), nullptr);
  // Odd keys must still be reachable across the tombstones.
  for (std::uint64_t k = 1; k < 64; k += 2) ASSERT_NE(map.find(k), nullptr);
  // Reuse: new keys land in tombstoned slots (the table has no free nulls).
  for (std::uint64_t k = 100; k < 132; ++k) {
    bool inserted = false;
    ASSERT_NE(map.insert_or_get(
                  k, [&] { return new IntMap::Node{k, k}; }, &inserted),
              nullptr)
        << "tombstoned slot not reused for key " << k;
    EXPECT_TRUE(inserted);
  }
  EXPECT_EQ(map.size(), 64u);
}

TEST(WfHashMap, FullTableRefusesNewKeysButServesOldOnes) {
  IntMap::Options opt;
  opt.min_slots = 64;
  IntMap map(std::move(opt));
  Epoch::Guard guard(Epoch::global());
  for (std::uint64_t k = 0; k < 64; ++k) {
    bool inserted = false;
    ASSERT_NE(map.insert_or_get(
                  k, [&] { return new IntMap::Node{k, k}; }, &inserted),
              nullptr);
  }
  bool inserted = false;
  EXPECT_EQ(map.insert_or_get(
                999, [&] { return new IntMap::Node{999, 999}; }, &inserted),
            nullptr);
  EXPECT_FALSE(inserted);
  // Existing keys still resolve (and do not allocate).
  EXPECT_NE(map.insert_or_get(
                7, [&]() -> IntMap::Node* {
                  ADD_FAILURE() << "make() called for a present key";
                  return new IntMap::Node{7, 7};
                }, &inserted),
            nullptr);
}

TEST(WfHashMap, ConcurrentSameKeyConvergesToOneNode) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  for (unsigned announce_after : {8u, 0u}) {  // fast path and helping path
    IntMap::Options opt;
    opt.min_slots = 4096;
    opt.announce_after = announce_after;
    IntMap map(std::move(opt));
    std::atomic<int> inserted_count{0};
    std::atomic<std::uintptr_t> winner[kRounds] = {};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        for (int r = 0; r < kRounds; ++r) {
          Epoch::Guard guard(Epoch::global());
          const std::uint64_t key = static_cast<std::uint64_t>(r);
          bool ins = false;
          IntMap::Node* n = map.insert_or_get(
              key,
              [&] {
                return new IntMap::Node{
                    key, static_cast<std::uint64_t>(t) * 1'000'000 + key};
              },
              &ins);
          ASSERT_NE(n, nullptr);
          if (ins) inserted_count.fetch_add(1);
          // Every thread must agree on one surviving node per key.
          std::uintptr_t mine = reinterpret_cast<std::uintptr_t>(n);
          std::uintptr_t expect = 0;
          if (!winner[r].compare_exchange_strong(expect, mine)) {
            EXPECT_EQ(expect, mine) << "two surviving nodes for key " << r;
          }
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(inserted_count.load(), kRounds)
        << "exactly one thread per key must observe inserted=true";
    EXPECT_EQ(map.size(), static_cast<std::size_t>(kRounds));
  }
}

TEST(WfHashMap, AnnouncePathCompletesEveryInsert) {
  // announce_after = 0: every insert publishes itself and is completed by
  // helpers (or by its own announcer) -- the BG-style helping discipline.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  const std::uint64_t announces_before = telemetry().announces.value();
  IntMap::Options opt;
  opt.min_slots = 8192;
  opt.announce_after = 0;
  IntMap map(std::move(opt));
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Epoch::Guard guard(Epoch::global());
        const std::uint64_t key =
            static_cast<std::uint64_t>(t) * kPerThread + i;
        bool ins = false;
        IntMap::Node* n = map.insert_or_get(
            key, [&] { return new IntMap::Node{key, key ^ 0xabcdu}; }, &ins);
        ASSERT_NE(n, nullptr);
        EXPECT_TRUE(ins);  // keys are disjoint across threads
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kThreads * kPerThread));
  Epoch::Guard guard(Epoch::global());
  for (std::uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    IntMap::Node* n = map.find(k);
    ASSERT_NE(n, nullptr) << "announced insert lost for key " << k;
    EXPECT_EQ(n->value, k ^ 0xabcdu);
  }
  EXPECT_GE(telemetry().announces.value(),
            announces_before + kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// ClockCache

using IntCache = ClockCache<std::uint64_t, std::uint64_t>;

TEST(WfClockCache, HitsPlusMissesEqualsLookupsUnderChurn) {
  // The reconciliation invariant the service stats tests depend on: every
  // get / lookup / get_or_insert counts exactly one hit or one miss, even
  // while eviction, duplicate-unlink, and the detached overflow path all
  // race.  Checked after join, when folds are exact.
  constexpr int kThreads = 6;
  constexpr int kOps = 8'000;
  constexpr std::uint64_t kKeys = 256;
  IntCache cache(IntCache::Options{.max_entries = 64, .segments = 4});
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(test_seed(0x5eedu) + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t key = rng.below(kKeys);
        switch (rng.below(3)) {
          case 0: {
            IntCache::Handle h = cache.get(key);
            if (h) {
              EXPECT_EQ(*h, key * 3);
            }
            break;
          }
          case 1: {
            std::uint64_t out = 0;
            if (cache.lookup(key, &out)) {
              EXPECT_EQ(out, key * 3);
            }
            break;
          }
          default: {
            IntCache::Handle h =
                cache.get_or_insert(key, [&] { return key * 3; });
            ASSERT_TRUE(h);
            EXPECT_EQ(*h, key * 3);
            break;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(cache.size(), 64u + kThreads);  // transient overshoot only
}

TEST(WfClockCache, EvictionNeverTouchesPinnedEntries) {
  IntCache cache(IntCache::Options{.max_entries = 4});
  IntCache::Handle pinned = cache.get_or_insert(1, [] { return 111u; });
  ASSERT_TRUE(pinned);
  // Flood far past the bound; entry 1 is pinned the whole time.
  for (std::uint64_t k = 2; k <= 40; ++k) {
    IntCache::Handle h = cache.get_or_insert(k, [&] { return k; });
    ASSERT_TRUE(h);
  }
  EXPECT_EQ(*pinned, 111u);
  {
    IntCache::Handle again = cache.get(1);
    ASSERT_TRUE(again) << "pinned entry was evicted";
    EXPECT_EQ(*again, 111u);
  }
  pinned.release();
  // Unpinned now: flooding evicts it like anything else.
  for (std::uint64_t k = 50; k <= 90; ++k) {
    (void)cache.get_or_insert(k, [&] { return k; });
  }
  EXPECT_FALSE(cache.get(1));
  EXPECT_LE(cache.size(), 5u);
}

TEST(WfClockCache, SequentialEvictionIsColdestFirst) {
  IntCache cache(IntCache::Options{.max_entries = 3});
  (void)cache.get_or_insert(1, [] { return 1u; });
  (void)cache.get_or_insert(2, [] { return 2u; });
  (void)cache.get_or_insert(3, [] { return 3u; });
  // Touch 1 then 2: key 3 is now the coldest.
  EXPECT_TRUE(cache.get(1));
  EXPECT_TRUE(cache.get(2));
  (void)cache.get_or_insert(4, [] { return 4u; });
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.get(3)) << "victim was not the coldest entry";
  EXPECT_TRUE(cache.get(1));
  EXPECT_TRUE(cache.get(2));
  EXPECT_TRUE(cache.get(4));
}

TEST(WfClockCache, HottestEntrySurvivesChurnInATinyCache) {
  IntCache cache(IntCache::Options{.max_entries = 1});
  for (std::uint64_t k = 0; k < 50; ++k) {
    IntCache::Handle h = cache.get_or_insert(k, [&] { return k; });
    ASSERT_TRUE(h);
    h.release();
    // keep_hottest: the entry just inserted (globally newest ticket) is
    // never the victim, so the most recent tower survives its own insert.
    EXPECT_TRUE(cache.get(k)) << "most recent entry evicted, key " << k;
  }
}

TEST(WfClockCache, WeightBoundShedAndClear) {
  IntCache cache(IntCache::Options{.max_weight = 100});
  for (std::uint64_t k = 0; k < 10; ++k) {
    IntCache::Handle h = cache.get_or_insert(k, [&] { return k; });
    cache.update_weight(h, 10);
    h.release();
    cache.maybe_evict();
  }
  EXPECT_LE(cache.weight(), 100u);
  const std::size_t before = cache.weight();
  const std::size_t released = cache.shed_release(35);
  EXPECT_GE(released, 35u);
  EXPECT_EQ(cache.weight(), before - released);

  IntCache::Handle keep = cache.get_or_insert(777, [] { return 7u; });
  const std::uint64_t evictions_before_clear = cache.evictions();
  cache.clear();
  EXPECT_EQ(cache.evictions(), evictions_before_clear)
      << "clear() must not count as evictions";
  EXPECT_EQ(cache.size(), 1u) << "pinned entry must survive clear()";
  EXPECT_EQ(*keep, 7u);
}

TEST(WfClockCache, SaturatedTableServesDetachedHandles) {
  // 64 slots (the floor), every one filled with a *pinned* entry: nothing
  // is evictable, so a new key must be served uncached rather than spin.
  IntCache cache(IntCache::Options{.max_entries = 8});
  std::vector<IntCache::Handle> pins;
  pins.reserve(64);
  for (std::uint64_t k = 0; k < 64; ++k) {
    bool inserted = false;
    IntCache::Handle h =
        cache.get_or_insert(k, [&] { return k; }, &inserted);
    ASSERT_TRUE(h);
    if (inserted) pins.push_back(std::move(h));
  }
  ASSERT_EQ(cache.size(), 64u);
  bool inserted = false;
  IntCache::Handle overflow =
      cache.get_or_insert(999, [] { return 999u; }, &inserted);
  ASSERT_TRUE(overflow);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*overflow, 999u);
  EXPECT_EQ(cache.size(), 64u) << "detached entry must not enter the table";
  overflow.release();  // owns its node; must not leak or double-free
  pins.clear();
}

TEST(WfClockCache, ConcurrentChurnReclaimsEvictedNodes) {
  {
    IntCache cache(IntCache::Options{.max_entries = 32, .segments = 4});
    constexpr int kThreads = 6;
    constexpr int kOps = 5'000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        Rng rng(test_seed(0xc0feu) + static_cast<std::uint64_t>(t));
        for (int i = 0; i < kOps; ++i) {
          const std::uint64_t key = rng.below(512);
          IntCache::Handle h =
              cache.get_or_insert(key, [&] { return key + 7; });
          ASSERT_TRUE(h);
          EXPECT_EQ(*h, key + 7);
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.size(), 32u + kThreads);
  }
  // Cache destroyed, worker threads exited: everything retired during the
  // churn must now be reclaimable.
  for (int i = 0; i < 8; ++i) Epoch::global().collect();
  EXPECT_EQ(Epoch::global().pending(), 0u);
}

// ---------------------------------------------------------------------------
// Counters

TEST(WfCounter, FoldsExactlyOnceQuiescent) {
  Counter c;
  MaxCell m;
  StatsShard<3> shard;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncs = 10'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIncs; ++i) {
        c.inc();
        shard.inc(i % 3);
        m.bump(static_cast<std::uint64_t>(t) * kIncs + i);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kIncs);
  EXPECT_EQ(m.value(), kThreads * kIncs - 1);
  const auto folded = shard.fold();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(folded[i], shard.value(i));
    total += folded[i];
  }
  EXPECT_EQ(total, kThreads * kIncs);
}

TEST(WfTelemetry, ContentionCountersAreMonotone) {
  // The wf_* gauges exported through wfc::obs read these directly; they
  // must only ever grow.
  Telemetry& t = telemetry();
  const std::uint64_t before = t.cas_retries.value();
  t.cas_retries.inc(3);
  EXPECT_EQ(t.cas_retries.value(), before + 3);
}

}  // namespace
}  // namespace wfc::wf
