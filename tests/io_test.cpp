// Serialization and SVG rendering tests.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "topology/geometry.hpp"
#include "topology/io.hpp"
#include "topology/subdivision.hpp"

namespace wfc::topo {
namespace {

void expect_same_complex(const ChromaticComplex& a, const ChromaticComplex& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_facets(), b.num_facets());
  ASSERT_EQ(a.n_colors(), b.n_colors());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex(v).color, b.vertex(v).color);
    EXPECT_EQ(a.vertex(v).key, b.vertex(v).key);
    EXPECT_EQ(a.vertex(v).carrier, b.vertex(v).carrier);
    EXPECT_EQ(a.vertex(v).base_carrier, b.vertex(v).base_carrier);
    ASSERT_EQ(a.vertex(v).coords.size(), b.vertex(v).coords.size());
    for (std::size_t i = 0; i < a.vertex(v).coords.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.vertex(v).coords[i], b.vertex(v).coords[i]);
    }
  }
  for (std::size_t i = 0; i < a.num_facets(); ++i) {
    EXPECT_EQ(a.facets()[i], b.facets()[i]);
  }
}

TEST(ComplexIo, RoundTripBaseSimplex) {
  ChromaticComplex c = base_simplex(3);
  expect_same_complex(c, from_text(to_text(c)));
}

TEST(ComplexIo, RoundTripSubdivision) {
  ChromaticComplex sds = iterated_sds(base_simplex(3), 2);
  ChromaticComplex back = from_text(to_text(sds));
  expect_same_complex(sds, back);
  // The deserialized complex is structurally live, not just data-equal.
  EXPECT_TRUE(back.contains_simplex(back.facets()[0]));
  EXPECT_TRUE(check_subdivision(back, base_simplex(3), 64).ok());
}

TEST(ComplexIo, RoundTripWithoutEmbedding) {
  ChromaticComplex c(2);
  VertexId a = c.add_vertex(0, "key with spaces % and \n newline", ColorSet{0});
  VertexId b = c.add_vertex(1, "plain", ColorSet{1});
  c.add_facet(make_simplex({a, b}));
  expect_same_complex(c, from_text(to_text(c)));
}

TEST(ComplexIo, RejectsGarbage) {
  EXPECT_THROW(from_text("not a complex"), std::invalid_argument);
  EXPECT_THROW(from_text("wfc-complex 1\nbogus"), std::invalid_argument);
  EXPECT_THROW(from_text("wfc-complex 1\ncolors 2\nwhat 1 2 3"),
               std::invalid_argument);
}

TEST(ComplexIo, BaseCarrierSurvives) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  ChromaticComplex back = from_text(to_text(sds));
  for (VertexId v = 0; v < sds.num_vertices(); ++v) {
    EXPECT_EQ(back.vertex(v).base_carrier, sds.vertex(v).base_carrier);
  }
}

TEST(ComplexIo, RandomComplexesRoundTrip) {
  // Property: arbitrary chromatic complexes survive serialization intact.
  Rng rng(60646);
  for (int trial = 0; trial < 25; ++trial) {
    const int n_colors = rng.between(2, 4);
    ChromaticComplex c(n_colors);
    std::vector<std::vector<VertexId>> by_color(
        static_cast<std::size_t>(n_colors));
    const int per_color = rng.between(1, 3);
    for (Color col = 0; col < n_colors; ++col) {
      for (int i = 0; i < per_color; ++i) {
        ColorSet carrier = ColorSet::single(col);
        if (rng.coin()) carrier = carrier.with(rng.between(0, n_colors - 1));
        by_color[static_cast<std::size_t>(col)].push_back(c.add_vertex(
            col, "r" + std::to_string(col) + "_" + std::to_string(i),
            carrier));
      }
    }
    const int facets = rng.between(1, 6);
    for (int f = 0; f < facets; ++f) {
      Simplex s;
      for (Color col = 0; col < n_colors; ++col) {
        if (col == 0 || rng.coin()) {
          const auto& pool = by_color[static_cast<std::size_t>(col)];
          s.push_back(pool[rng.below(pool.size())]);
        }
      }
      c.add_facet(make_simplex(std::move(s)));
    }
    expect_same_complex(c, from_text(to_text(c)));
  }
}

TEST(Svg, RendersSubdividedTriangle) {
  ChromaticComplex sds = iterated_sds(base_simplex(3), 2);
  std::string svg = render_svg(sds);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One polygon per triangle, one circle per vertex.
  std::size_t polygons = 0, circles = 0, pos = 0;
  while ((pos = svg.find("<polygon", pos)) != std::string::npos) {
    ++polygons;
    ++pos;
  }
  pos = 0;
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  EXPECT_EQ(polygons, sds.num_facets());
  EXPECT_EQ(circles, sds.num_vertices());
}

TEST(Svg, RendersOneDimensionalComplexes) {
  // SDS(s^1) embedded in the edge of s^2 coordinates would need 3 coords;
  // instead verify the dimension guard on higher-dimensional input.
  ChromaticComplex sds3 = standard_chromatic_subdivision(base_simplex(4));
  EXPECT_THROW((void)render_svg(sds3), std::invalid_argument);
}

TEST(Svg, VertexFillOverride) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  SvgOptions opts;
  opts.vertex_fill.assign(sds.num_vertices(), "");
  opts.vertex_fill[0] = "#000000";
  std::string svg = render_svg(sds, opts);
  EXPECT_NE(svg.find("#000000"), std::string::npos);
}

TEST(Svg, LabelsWhenRequested) {
  ChromaticComplex base = base_simplex(3);
  SvgOptions opts;
  opts.label_vertices = true;
  std::string svg = render_svg(base, opts);
  EXPECT_NE(svg.find("<text"), std::string::npos);
  EXPECT_NE(svg.find("P0"), std::string::npos);
}

}  // namespace
}  // namespace wfc::topo
