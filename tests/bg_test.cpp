// Safe agreement and the Borowsky-Gafni simulation.
#include <gtest/gtest.h>

#include <barrier>
#include <set>
#include <thread>

#include "bg/safe_agreement.hpp"
#include "bg/simulation.hpp"

namespace wfc::bg {
namespace {

// ---------------------------------------------------------------------------
// SafeAgreement.
// ---------------------------------------------------------------------------

TEST(SafeAgreement, UnresolvedBeforeAnyProposal) {
  SafeAgreement<int> sa(3);
  EXPECT_FALSE(sa.try_resolve().has_value());
}

TEST(SafeAgreement, SoloProposeResolvesToOwnValue) {
  SafeAgreement<int> sa(3);
  sa.propose(1, 42);
  auto v = sa.try_resolve();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(SafeAgreement, SequentialProposalsKeepFirstDecision) {
  SafeAgreement<int> sa(3);
  sa.propose(2, 7);
  ASSERT_EQ(sa.try_resolve(), 7);
  sa.propose(0, 9);  // later proposal must defer
  EXPECT_EQ(sa.try_resolve(), 7);
}

TEST(SafeAgreement, UnsafeWindowBlocksResolution) {
  SafeAgreement<int> sa(2);
  sa.propose_enter(0, 5);  // enters the window and "crashes"
  EXPECT_FALSE(sa.try_resolve().has_value());
  sa.propose(1, 6);
  // Processor 0 is still RAISED forever: the object stays unresolved.
  EXPECT_FALSE(sa.try_resolve().has_value());
  // If 0 finally finishes, resolution unblocks (validity: one of 5, 6).
  sa.propose_finish(0);
  auto v = sa.try_resolve();
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(*v == 5 || *v == 6);
}

TEST(SafeAgreement, DoubleProposeRejected) {
  SafeAgreement<int> sa(2);
  sa.propose(0, 1);
  EXPECT_THROW(sa.propose(0, 2), std::invalid_argument);
  EXPECT_THROW(sa.propose_finish(1), std::invalid_argument);
}

TEST(SafeAgreement, ConcurrentAgreementAndValidity) {
  for (int trial = 0; trial < 100; ++trial) {
    constexpr int kProcs = 4;
    SafeAgreement<int> sa(kProcs);
    std::barrier sync(kProcs);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProcs; ++p) {
      threads.emplace_back([&, p] {
        sync.arrive_and_wait();
        sa.propose(p, 100 + p);
      });
    }
    for (auto& t : threads) t.join();
    auto v = sa.try_resolve();
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, 100);
    EXPECT_LT(*v, 100 + kProcs);
    // All resolvers agree (resolve repeatedly; value is stable).
    for (int i = 0; i < 5; ++i) EXPECT_EQ(sa.try_resolve(), v);
  }
}

// ---------------------------------------------------------------------------
// BG simulation, crash-free.
// ---------------------------------------------------------------------------

TEST(BgSimulation, CrashFreeCompletesEverySimulatedProcessor) {
  for (int trial = 0; trial < 10; ++trial) {
    BgConfig config;
    config.n_simulators = 2;
    config.n_simulated = 3;
    config.rounds = 2;
    BgOutcome out = run_bg_simulation(config);
    EXPECT_EQ(out.blocked, 0);
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(out.rounds_completed[static_cast<std::size_t>(j)], 2);
    }
    EXPECT_TRUE(out.legal()) << "comparable=" << out.views_comparable
                             << " self=" << out.self_inclusive
                             << " monotone=" << out.per_writer_monotone;
  }
}

TEST(BgSimulation, MoreSimulatorsThanSimulated) {
  BgConfig config;
  config.n_simulators = 4;
  config.n_simulated = 2;
  config.rounds = 3;
  BgOutcome out = run_bg_simulation(config);
  EXPECT_EQ(out.blocked, 0);
  EXPECT_TRUE(out.legal());
}

TEST(BgSimulation, SingleSimulatorRunsSequentially) {
  BgConfig config;
  config.n_simulators = 1;
  config.n_simulated = 4;
  config.rounds = 2;
  BgOutcome out = run_bg_simulation(config);
  EXPECT_EQ(out.blocked, 0);
  EXPECT_TRUE(out.legal());
}

TEST(BgSimulation, ViewsFormLegalFullInformationExecution) {
  BgConfig config;
  config.n_simulators = 3;
  config.n_simulated = 3;
  config.rounds = 3;
  BgOutcome out = run_bg_simulation(config);
  ASSERT_EQ(out.blocked, 0);
  ASSERT_TRUE(out.legal());
  // Round-0 views contain only round-0 writes with the id values.
  for (int j = 0; j < 3; ++j) {
    const SimView& v0 = out.views[static_cast<std::size_t>(j)][0];
    for (int c = 0; c < 3; ++c) {
      const auto& cell = v0[static_cast<std::size_t>(c)];
      if (cell.has_value() && cell->first == 0) {
        EXPECT_EQ(cell->second, c);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// BG simulation with crash injection: at most one simulated processor
// blocked per crashed simulator.
// ---------------------------------------------------------------------------

TEST(BgSimulation, OneCrashBlocksAtMostOneSimulatedProcessor) {
  for (int crash_point : {1, 2, 3, 4}) {
    BgConfig config;
    config.n_simulators = 2;
    config.n_simulated = 3;
    config.rounds = 2;
    config.crash_in_sa = {crash_point, -1};
    config.patience = 400;
    BgOutcome out = run_bg_simulation(config);
    EXPECT_LE(out.blocked, 1) << "crash_point=" << crash_point;
    // The resolved prefix is still a legal execution.
    EXPECT_TRUE(out.legal()) << "crash_point=" << crash_point;
    // At least n_simulated - 1 processors finished everything.
    int done = 0;
    for (int j = 0; j < 3; ++j) {
      if (out.rounds_completed[static_cast<std::size_t>(j)] == 2) ++done;
    }
    EXPECT_GE(done, 2) << "crash_point=" << crash_point;
  }
}

TEST(BgSimulation, TwoCrashesBlockAtMostTwo) {
  BgConfig config;
  config.n_simulators = 3;
  config.n_simulated = 4;
  config.rounds = 2;
  config.crash_in_sa = {1, 3, -1};
  config.patience = 400;
  BgOutcome out = run_bg_simulation(config);
  EXPECT_LE(out.blocked, 2);
  EXPECT_TRUE(out.legal());
  int done = 0;
  for (int j = 0; j < 4; ++j) {
    if (out.rounds_completed[static_cast<std::size_t>(j)] == 2) ++done;
  }
  EXPECT_GE(done, 2);
}

TEST(BgSimulation, AllSimulatorsCrashingStallsButStaysLegal) {
  BgConfig config;
  config.n_simulators = 2;
  config.n_simulated = 2;
  config.rounds = 2;
  config.crash_in_sa = {1, 1};
  config.patience = 50;
  BgOutcome out = run_bg_simulation(config);
  // Nothing resolved (both died in their first window) -- and the empty
  // execution is trivially legal.
  EXPECT_TRUE(out.legal());
  EXPECT_EQ(out.blocked, 2);
}

TEST(BgSimulation, ValidatesConfig) {
  BgConfig config;
  config.n_simulators = 2;
  config.crash_in_sa = {1};  // wrong arity
  EXPECT_THROW((void)run_bg_simulation(config), std::invalid_argument);
  BgConfig bad_rounds;
  bad_rounds.rounds = 0;
  EXPECT_THROW((void)run_bg_simulation(bad_rounds), std::invalid_argument);
}

}  // namespace
}  // namespace wfc::bg
