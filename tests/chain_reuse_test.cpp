// task::solve now grows ONE SdsChain across levels (level b extends the
// level b-1 tower) instead of rebuilding the subdivision from scratch per
// level.  That is purely an allocation-sharing change: the search itself
// must be bit-identical.  These tests pin that down by comparing solve()
// against independent fresh solve_at_level() runs -- same status, same
// witness level, same decision map, and the exact same nodes_explored.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "topology/complex.hpp"

namespace wfc::task {
namespace {

struct Case {
  std::shared_ptr<Task> task;
  int max_level;
};

std::vector<Case> canonical_cases() {
  std::vector<Case> cases;
  cases.push_back({std::make_shared<ConsensusTask>(2, 2), 2});
  cases.push_back({std::make_shared<KSetConsensusTask>(3, 2), 1});
  cases.push_back({std::make_shared<RenamingTask>(2, 2), 2});
  cases.push_back({std::make_shared<ApproxAgreementTask>(2, 3), 2});
  cases.push_back({std::make_shared<ApproxAgreementTask>(2, 9), 2});
  cases.push_back({std::make_shared<IdentityTask>(topo::base_simplex(3)), 1});
  return cases;
}

TEST(ChainReuse, SolveMatchesFreshPerLevelRuns) {
  for (const Case& c : canonical_cases()) {
    SCOPED_TRACE(c.task->name());
    const SolveResult combined = solve(*c.task, c.max_level);

    // Replay level by level with a fresh chain each time, mirroring the
    // pre-reuse behavior, and accumulate what solve() should report.
    Solvability expected_status = Solvability::kUnsolvable;
    int expected_level = -1;
    std::vector<topo::VertexId> expected_decision;
    std::uint64_t expected_nodes = 0;
    for (int level = 0; level <= c.max_level; ++level) {
      const SolveResult r = solve_at_level(*c.task, level);
      expected_nodes += r.nodes_explored;
      if (r.status == Solvability::kSolvable) {
        expected_status = Solvability::kSolvable;
        expected_level = r.level;
        expected_decision = r.decision;
        break;
      }
      if (r.status != Solvability::kUnsolvable) expected_status = r.status;
    }

    EXPECT_EQ(combined.status, expected_status);
    EXPECT_EQ(combined.level, expected_level);
    EXPECT_EQ(combined.decision, expected_decision);
    EXPECT_EQ(combined.nodes_explored, expected_nodes);
  }
}

TEST(ChainReuse, SolvableResultCarriesChainOfWitnessDepth) {
  // The reused tower may be deeper than the witness level internally; the
  // published result must still satisfy the DecisionProtocol invariant.
  ApproxAgreementTask approx(2, 3);
  const SolveResult r = solve(approx, 2);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  ASSERT_NE(r.chain, nullptr);
  EXPECT_EQ(r.chain->depth(), r.level);
  EXPECT_EQ(r.decision.size(), r.chain->top().num_vertices());
}

TEST(ChainReuse, ProviderAndPrivateChainsAgree) {
  // Routing chains through a provider (as the service cache does) must not
  // change any observable of the search either.
  ConsensusTask consensus(2, 2);
  const SolveResult plain = solve(consensus, 2);

  auto shared = std::make_shared<proto::SdsChain>(consensus.input(), 2);
  SolveOptions options;
  options.chain_provider = [&shared](const topo::ChromaticComplex&,
                                     int) { return shared; };
  const SolveResult via_provider = solve(consensus, 2, options);

  EXPECT_EQ(via_provider.status, plain.status);
  EXPECT_EQ(via_provider.level, plain.level);
  EXPECT_EQ(via_provider.decision, plain.decision);
  EXPECT_EQ(via_provider.nodes_explored, plain.nodes_explored);
}

}  // namespace
}  // namespace wfc::task
