// Tests for protocol-complex generation and the machine-checked content of
// Lemmas 3.2 and 3.3: execution-derived IIS protocol complexes are exactly
// the iterated standard chromatic subdivisions.
#include <gtest/gtest.h>

#include <set>

#include "protocol/protocol_complex.hpp"
#include "protocol/sds_chain.hpp"
#include "topology/ordered_partition.hpp"
#include "topology/structure.hpp"
#include "topology/subdivision.hpp"

namespace wfc::proto {
namespace {

using topo::base_simplex;
using topo::ChromaticComplex;
using topo::fubini;
using topo::Simplex;

TEST(SdsChain, LevelsAreIteratedSds) {
  SdsChain chain(base_simplex(3), 2);
  EXPECT_EQ(chain.depth(), 2);
  EXPECT_EQ(chain.level(0).num_facets(), 1u);
  EXPECT_EQ(chain.level(1).num_facets(), 13u);
  EXPECT_EQ(chain.level(2).num_facets(), 169u);
  EXPECT_EQ(&chain.top(), &chain.level(2));
}

TEST(SdsChain, LocateSoloView) {
  SdsChain chain(base_simplex(3), 1);
  // Processor 0 running alone sees {input vertex of color 0} = vertex 0.
  topo::VertexId v = chain.locate(1, 0, {0});
  EXPECT_EQ(chain.level(1).vertex(v).color, 0);
  EXPECT_EQ(chain.level(1).vertex(v).carrier, ColorSet{0});
}

TEST(SdsChain, LocateFullView) {
  SdsChain chain(base_simplex(3), 1);
  topo::VertexId v = chain.locate(1, 1, {0, 1, 2});
  EXPECT_EQ(chain.level(1).vertex(v).color, 1);
  EXPECT_EQ(chain.level(1).vertex(v).carrier, ColorSet::full(3));
}

TEST(SdsChain, LocateRejectsIllegalView) {
  SdsChain chain(base_simplex(3), 1);
  // A view that does not include a vertex of one's own color is illegal.
  EXPECT_THROW((void)chain.locate(1, 0, {1}), std::logic_error);
  EXPECT_THROW((void)chain.locate(0, 0, {0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Lemma 3.2 / 3.3: IIS protocol complex == SDS^b.
// ---------------------------------------------------------------------------

TEST(IisComplex, OneRoundMatchesSdsCounts) {
  for (int n_plus_1 = 2; n_plus_1 <= 4; ++n_plus_1) {
    ChromaticComplex proto = build_iis_protocol_complex(
        base_simplex(n_plus_1), 1);
    ChromaticComplex sds =
        topo::standard_chromatic_subdivision(base_simplex(n_plus_1));
    EXPECT_EQ(proto.num_vertices(), sds.num_vertices()) << n_plus_1;
    EXPECT_EQ(proto.num_facets(), sds.num_facets()) << n_plus_1;
  }
}

TEST(IisComplex, Lemma32IsomorphismOneRound) {
  for (int n_plus_1 = 2; n_plus_1 <= 4; ++n_plus_1) {
    IsomorphismReport rep =
        verify_iis_complex_is_sds(base_simplex(n_plus_1), 1);
    EXPECT_TRUE(rep.ok()) << "n+1=" << n_plus_1 << " pv=" << rep.protocol_vertices
                          << " sv=" << rep.sds_vertices;
  }
}

TEST(IisComplex, Lemma33IsomorphismIterated) {
  // b-shot complex == SDS^b(s^n).
  IsomorphismReport two_procs = verify_iis_complex_is_sds(base_simplex(2), 3);
  EXPECT_TRUE(two_procs.ok());
  EXPECT_EQ(two_procs.sds_facets, 27u);  // 3^3

  IsomorphismReport three_procs =
      verify_iis_complex_is_sds(base_simplex(3), 2);
  EXPECT_TRUE(three_procs.ok());
  EXPECT_EQ(three_procs.sds_facets, 169u);
}

TEST(IisComplex, GeneralInputComplex) {
  // Binary consensus-style input complex for 2 processors: each holds 0/1;
  // 4 input edges.  The 1-round protocol complex must be SDS of it.
  ChromaticComplex inputs(2);
  std::vector<topo::VertexId> v0, v1;
  for (int val = 0; val <= 1; ++val) {
    v0.push_back(inputs.add_vertex(0, "P0=" + std::to_string(val), ColorSet{0}));
    v1.push_back(inputs.add_vertex(1, "P1=" + std::to_string(val), ColorSet{1}));
  }
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      inputs.add_facet(topo::make_simplex({v0[a], v1[b]}));
    }
  }
  IsomorphismReport rep = verify_iis_complex_is_sds(inputs, 2);
  EXPECT_TRUE(rep.ok()) << rep.protocol_vertices << " vs " << rep.sds_vertices;

  ChromaticComplex proto = build_iis_protocol_complex(inputs, 1);
  // Each of the 4 edges subdivides into 3, sharing no interior vertices
  // (distinct inputs), and corner vertices are shared between edges with the
  // same input vertex -- solo views: 2 per color.
  EXPECT_EQ(proto.num_facets(), 12u);
}

TEST(IisComplex, BaseCarrierTracksInputVertices) {
  // In the general-input complex above, a solo view's base carrier must be
  // exactly its own input vertex.
  ChromaticComplex inputs(2);
  auto a0 = inputs.add_vertex(0, "a0", ColorSet{0});
  auto b0 = inputs.add_vertex(1, "b0", ColorSet{1});
  auto b1 = inputs.add_vertex(1, "b1", ColorSet{1});
  inputs.add_facet(topo::make_simplex({a0, b0}));
  inputs.add_facet(topo::make_simplex({a0, b1}));
  ChromaticComplex proto = build_iis_protocol_complex(inputs, 1);
  int solo_color1 = 0;
  for (topo::VertexId v = 0; v < proto.num_vertices(); ++v) {
    const auto& d = proto.vertex(v);
    if (d.color == 1 && d.carrier == ColorSet{1}) {
      ++solo_color1;
      EXPECT_EQ(d.base_carrier.size(), 1u);
    }
  }
  EXPECT_EQ(solo_color1, 2);  // one solo view per distinct input of P1
}

TEST(IisComplex, SdsOfGeneralInputHasBaseCarriers) {
  // The combinatorial construction must agree on base carriers: vertices of
  // SDS(I) whose carrier is full have base carrier = the whole facet.
  ChromaticComplex inputs(2);
  auto a0 = inputs.add_vertex(0, "a0", ColorSet{0});
  auto b0 = inputs.add_vertex(1, "b0", ColorSet{1});
  inputs.add_facet(topo::make_simplex({a0, b0}));
  ChromaticComplex sds = topo::standard_chromatic_subdivision(inputs);
  for (topo::VertexId v = 0; v < sds.num_vertices(); ++v) {
    const auto& d = sds.vertex(v);
    if (d.carrier == ColorSet::full(2)) {
      EXPECT_EQ(d.base_carrier, (Simplex{a0, b0}));
    } else {
      EXPECT_EQ(d.base_carrier.size(), 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// Atomic-snapshot model protocol complex.
// ---------------------------------------------------------------------------

TEST(SnapshotComplex, TwoProcessorsOneShot) {
  // 2 processors, 1 write+scan each: three distinguishable outcomes per
  // processor pair: P0 first, P1 first, or concurrent -- the complex is a
  // path of 3 edges (same shape as SDS(s^1)).
  ChromaticComplex c = build_snapshot_protocol_complex(2, 1);
  EXPECT_EQ(c.num_facets(), 3u);
  EXPECT_EQ(c.num_vertices(), 4u);
  EXPECT_TRUE(topo::check_pseudomanifold(c).ok());
}

TEST(SnapshotComplex, ThreeProcessorsOneShot) {
  // The one-shot atomic snapshot complex over 3 processors is a subdivided
  // simplex strictly coarser than SDS(s^2): snapshots need not be immediate.
  ChromaticComplex c = build_snapshot_protocol_complex(3, 1);
  EXPECT_TRUE(c.is_pure());
  EXPECT_EQ(c.dimension(), 2);
  EXPECT_EQ(topo::num_connected_components(c), 1);
  // Known count: vertices are (p, view) with view = subset of cells written
  // at scan time containing p's own cell.
  ChromaticComplex sds = topo::standard_chromatic_subdivision(base_simplex(3));
  EXPECT_GE(c.num_facets(), sds.num_facets());
}

TEST(SnapshotComplex, ContainsNonImmediateExecution) {
  // Witness that the snapshot model has executions the IIS model forbids:
  // P0 writes, P1 writes, P1 scans (sees both), P0 scans (sees both) is
  // immediate; but P0 write, P1 write, P0 scan, P1 scan gives both full
  // views, fine; the classic non-IS view pair is "P0 sees only itself, P1
  // sees only itself" -- impossible in any model with atomic snapshots.
  // What IS possible here and not in one-shot IS: P0's view = {0,1} while
  // P1's view = {0,1} AND a third processor distinguishes orders... for 2
  // procs the complexes coincide, so just assert equality of facet counts.
  ChromaticComplex c2 = build_snapshot_protocol_complex(2, 1);
  EXPECT_EQ(c2.num_facets(), 3u);
}

}  // namespace
}  // namespace wfc::proto
