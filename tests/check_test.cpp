// Tests for wfc::chk: the schedule explorer with crash injection, the
// SDS-membership and Delta exhaustive checks (bounded proofs of Lemmas
// 3.2/3.3 and Proposition 3.1's operational half), the step-interleaving
// driver over the register implementations, the Wing-Gong linearizability
// checker, and the §4 emulation conformance sweep.
//
// Two deliberately broken register doubles live here: a single-collect
// "snapshot" that drops concurrent writes and an immediate snapshot whose
// exit rule is off by one level.  The checkers must reject both while
// accepting the real implementations.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "check/conformance.hpp"
#include "check/explorer.hpp"
#include "check/lin_check.hpp"
#include "check/sds_check.hpp"
#include "check/step_driver.hpp"
#include "registers/atomic_snapshot.hpp"
#include "registers/immediate_snapshot.hpp"
#include "registers/step_point.hpp"
#include "registers/swmr_register.hpp"
#include "runtime/adversary.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "topology/complex.hpp"

namespace wfc::chk {
namespace {

// ---------------------------------------------------------------------------
// Explorer: execution counts against the Fubini arithmetic.
// ---------------------------------------------------------------------------

/// A protocol that never halts: every execution runs the full depth.
ExploreStats explore_counting(ExploreOptions opt) {
  return explore_iis<int>(
      opt, [](int p) { return p; },
      [](int, int, const rt::IisSnapshot<int>& snap) {
        return rt::Step<int>::cont(static_cast<int>(snap.size()));
      },
      [](const Execution<int>&) {});
}

TEST(Explorer, CrashFreeCountsAreFubiniPowers) {
  // Fubini(2) = 3, Fubini(3) = 13, Fubini(4) = 75; b rounds multiply.
  EXPECT_EQ(explore_counting({.n_procs = 2, .rounds = 1}).executions, 3u);
  EXPECT_EQ(explore_counting({.n_procs = 2, .rounds = 2}).executions, 9u);
  EXPECT_EQ(explore_counting({.n_procs = 3, .rounds = 1}).executions, 13u);
  EXPECT_EQ(explore_counting({.n_procs = 3, .rounds = 2}).executions, 169u);
  EXPECT_EQ(explore_counting({.n_procs = 4, .rounds = 1}).executions, 75u);
}

TEST(Explorer, CrashInjectionAddsFaultyExecutions) {
  // n = 2, b = 1, t = 1: 3 crash-free + (crash {0}) + (crash {1}) = 5.
  const ExploreStats one =
      explore_counting({.n_procs = 2, .rounds = 1, .max_crashes = 1});
  EXPECT_EQ(one.executions, 5u);
  EXPECT_EQ(one.crashy_executions, 2u);
  // n = 2, b = 2, t = 1: 9 crash-free + 8 crashy.
  const ExploreStats two =
      explore_counting({.n_procs = 2, .rounds = 2, .max_crashes = 1});
  EXPECT_EQ(two.executions, 17u);
  EXPECT_EQ(two.crashy_executions, 8u);
}

TEST(Explorer, CrashedProcessorsTakeNoFurtherSteps) {
  ExploreOptions opt{.n_procs = 2, .rounds = 2, .max_crashes = 2};
  explore_iis<int>(
      opt, [](int p) { return p; },
      [](int, int, const rt::IisSnapshot<int>& snap) {
        return rt::Step<int>::cont(static_cast<int>(snap.size()));
      },
      [](const Execution<int>& ex) {
        for (Color p : ex.crashed) {
          int crash_round = -1;
          for (std::size_t r = 0; r < ex.crashes.size(); ++r) {
            if (ex.crashes[r].contains(p)) {
              crash_round = static_cast<int>(r);
            }
          }
          ASSERT_GE(crash_round, 0);
          EXPECT_EQ(ex.rounds_taken[static_cast<std::size_t>(p)], crash_round);
        }
      });
}

TEST(Explorer, SymmetryReductionKeepsOneExecutionPerOrbit) {
  // Ordered partitions of 3 processors fall into 4 shape orbits under S_3:
  // (3), (1,2), (2,1), (1,1,1).
  const ExploreStats stats = explore_counting(
      {.n_procs = 3, .rounds = 1, .symmetry_reduction = true});
  EXPECT_EQ(stats.executions, 4u);
  EXPECT_GT(stats.symmetry_pruned, 0u);
}

TEST(Explorer, SymmetryReductionComposesWithCrashInjection) {
  // Crash sets join the round signature the orbit minimization acts on, so
  // symmetric crashy branches are cut too.  Full n=3 b=1 t=1 sweep: 13
  // crash-free + 3 * (crash one of {0,1,2}) x Fubini(2) = 13 + 9 = 22.
  const ExploreStats full = explore_counting(
      {.n_procs = 3, .rounds = 1, .max_crashes = 1});
  EXPECT_EQ(full.executions, 22u);
  const ExploreStats reduced = explore_counting(
      {.n_procs = 3, .rounds = 1, .max_crashes = 1,
       .symmetry_reduction = true});
  EXPECT_LT(reduced.executions, full.executions);
  EXPECT_GT(reduced.symmetry_pruned, 0u);
  // Crashy orbits survive the reduction (one representative each).
  EXPECT_GT(reduced.crashy_executions, 0u);
  EXPECT_LT(reduced.crashy_executions, full.crashy_executions);
}

TEST(Explorer, TruncationAndCancellation) {
  const ExploreStats capped =
      explore_counting({.n_procs = 3, .rounds = 1, .max_executions = 5});
  EXPECT_TRUE(capped.truncated);
  EXPECT_EQ(capped.executions, 5u);

  std::atomic<bool> cancel{true};
  ExploreOptions opt{.n_procs = 3, .rounds = 1};
  opt.cancel = &cancel;
  const ExploreStats cancelled = explore_counting(opt);
  EXPECT_TRUE(cancelled.truncated);
  EXPECT_EQ(cancelled.executions, 0u);
}

// ---------------------------------------------------------------------------
// CrashAdversary and run_iis_crashing.
// ---------------------------------------------------------------------------

TEST(CrashAdversary, SilencesPlannedProcessors) {
  rt::SynchronousAdversary base;
  CrashAdversary adv(base, {{0, 1}});
  EXPECT_EQ(adv.crashes_at(0), ColorSet{1});
  EXPECT_TRUE(adv.crashes_at(1).empty());
  EXPECT_EQ(adv.crashed_by(3), ColorSet{1});

  std::map<int, int> final_view;
  const CrashRunStats stats = run_iis_crashing<int>(
      3, adv, 8, [](int p) { return p; },
      [&](int p, int round, const rt::IisSnapshot<int>& snap) {
        final_view[p] = static_cast<int>(snap.size());
        return round == 0 ? rt::Step<int>::cont(p)
                          : rt::Step<int>::halt();
      });
  EXPECT_EQ(stats.crashed, ColorSet{1});
  EXPECT_EQ(stats.iis.rounds_taken[1], 0);
  EXPECT_EQ(stats.iis.rounds_taken[0], 2);
  // Survivors only ever see each other.
  EXPECT_EQ(final_view[0], 2);
  EXPECT_EQ(final_view[2], 2);
  EXPECT_EQ(final_view.count(1), 0u);
}

TEST(CrashAdversary, RejectsMalformedPlans) {
  rt::SynchronousAdversary base;
  EXPECT_THROW(CrashAdversary(base, {{-1, 0}}), std::invalid_argument);
  EXPECT_THROW(CrashAdversary(base, {{0, 0}, {1, 0}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SDS membership: exhaustive bounded Lemmas 3.2/3.3 (the acceptance grid).
// ---------------------------------------------------------------------------

class SdsMembership
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SdsMembership, EveryViewVectorIsASimplexOfSdsB) {
  const auto [n_procs, rounds, crashes] = GetParam();
  ExploreOptions opt;
  opt.n_procs = n_procs;
  opt.rounds = rounds;
  opt.max_crashes = crashes;
  const SdsCheckReport report = check_views_in_sds(opt);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_FALSE(report.explored.truncated);
  EXPECT_GT(report.explored.executions, 0u);
  EXPECT_GT(report.vertices_located, 0u);
  EXPECT_GT(report.simplices_checked, 0u);
  if (crashes > 0) {
    EXPECT_GT(report.explored.crashy_executions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SdsMembership,
    ::testing::Values(std::tuple{2, 1, 0}, std::tuple{2, 2, 0},
                      std::tuple{3, 1, 0}, std::tuple{3, 2, 0},
                      std::tuple{4, 1, 0}, std::tuple{2, 2, 1},
                      std::tuple{3, 2, 1}, std::tuple{2, 2, 2},
                      std::tuple{4, 1, 1}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SdsMembership, SymmetryReducedSweepAgrees) {
  ExploreOptions opt;
  opt.n_procs = 3;
  opt.rounds = 2;
  opt.symmetry_reduction = true;  // the full-information protocol is symmetric
  const SdsCheckReport report = check_views_in_sds(opt);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(report.explored.symmetry_pruned, 0u);
  EXPECT_LT(report.explored.executions, 169u);
}

TEST(SdsMembership, SymmetryReducedCrashingSweepAgrees) {
  // The membership property must hold on the reduced CRASHY sweep too:
  // each surviving representative stands for a whole orbit of runs, so a
  // violation anywhere in an orbit would surface on its representative.
  ExploreOptions opt;
  opt.n_procs = 3;
  opt.rounds = 2;
  opt.max_crashes = 1;
  opt.symmetry_reduction = true;
  const SdsCheckReport report = check_views_in_sds(opt);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(report.explored.symmetry_pruned, 0u);
  EXPECT_GT(report.explored.crashy_executions, 0u);
}

// ---------------------------------------------------------------------------
// Decision maps against Delta.
// ---------------------------------------------------------------------------

TEST(DeltaCheck, SolvedApproxAgreementDecidesLegallyUnderCrashes) {
  task::ApproxAgreementTask approx(2, 3);
  const task::SolveResult solved = task::solve(approx, 2);
  ASSERT_EQ(solved.status, task::Solvability::kSolvable);
  const DeltaCheckReport report =
      check_decision_against_delta(approx, solved, 1);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(report.decisions_checked, 0u);
  EXPECT_GT(report.explored.crashy_executions, 0u);
}

TEST(DeltaCheck, LevelZeroMapsAreCheckedFaceByFace) {
  task::IdentityTask identity(topo::base_simplex(3));
  const task::SolveResult solved = task::solve(identity, 1);
  ASSERT_EQ(solved.status, task::Solvability::kSolvable);
  ASSERT_EQ(solved.level, 0);
  const DeltaCheckReport report =
      check_decision_against_delta(identity, solved, 1);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(report.decisions_checked, 0u);
}

TEST(DeltaCheck, CorruptedDecisionMapIsRejected) {
  task::IdentityTask identity(topo::base_simplex(3));
  task::SolveResult solved = task::solve(identity, 1);
  ASSERT_EQ(solved.status, task::Solvability::kSolvable);
  ASSERT_GE(solved.decision.size(), 2u);
  // Identity demands decision(v) = v; redirecting one vertex must surface
  // as a Delta violation on some face.
  solved.decision[0] = solved.decision[1];
  const DeltaCheckReport report =
      check_decision_against_delta(identity, solved, 0);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.violation.empty());
}

// ---------------------------------------------------------------------------
// StepDriver: deterministic step control over the register seam.
// ---------------------------------------------------------------------------

TEST(StepDriver, StepsCountSharedAccesses) {
  reg::SwmrRegister<int> r;
  StepDriver driver(1);
  driver.spawn(0, [&] {
    r.write(1);
    r.write(2);
  });
  EXPECT_TRUE(driver.step(0));   // parked before the first write
  EXPECT_TRUE(driver.step(0));   // first write done
  EXPECT_FALSE(driver.step(0));  // second write done, body finished
  EXPECT_TRUE(driver.done(0));
  EXPECT_EQ(driver.steps_taken(0), 2);
  EXPECT_EQ(r.read(), std::optional<int>(2));
}

TEST(StepDriver, RunUntilAndFinish) {
  reg::SwmrRegister<int> r;
  StepDriver driver(2);
  driver.spawn(0, [&] {
    r.write(7);
    r.write(8);
  });
  EXPECT_TRUE(driver.run_until(
      0, [&] { return r.read() == std::optional<int>(7); }));
  driver.spawn(1, [&] { (void)r.read(); });
  driver.finish_all();
  EXPECT_TRUE(driver.done(0));
  EXPECT_TRUE(driver.done(1));
  EXPECT_EQ(r.read(), std::optional<int>(8));
}

TEST(StepDriver, PropagatesBodyExceptions) {
  StepDriver driver(1);
  driver.spawn(0, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(driver.finish(0), std::runtime_error);
}

TEST(StepDriver, UnregisteredThreadsFallThroughTheHook) {
  // While a driver exists, accesses from non-spawned threads (here: this
  // controller thread) must not block on the hook.
  reg::SwmrRegister<int> r;
  StepDriver driver(1);
  r.write(42);
  EXPECT_EQ(r.read(), std::optional<int>(42));
}

TEST(StepInterleaving, EnumeratesAllOrdersOfIndependentWrites) {
  // Two processors, one write each (2 steps each): C(4, 2) = 6 schedules.
  reg::SwmrRegister<int> a, b;
  const InterleaveStats stats = for_each_step_interleaving(
      2,
      [&](StepDriver& driver) {
        driver.spawn(0, [&] { a.write(1); });
        driver.spawn(1, [&] { b.write(2); });
      },
      [&](const std::vector<int>& trace) { EXPECT_EQ(trace.size(), 4u); });
  EXPECT_EQ(stats.schedules, 6u);
  EXPECT_FALSE(stats.truncated);
}

TEST(StepInterleaving, TruncatesAtTheScheduleCap) {
  reg::SwmrRegister<int> a, b;
  const InterleaveStats stats = for_each_step_interleaving(
      2,
      [&](StepDriver& driver) {
        driver.spawn(0, [&] { a.write(1); });
        driver.spawn(1, [&] { b.write(2); });
      },
      [](const std::vector<int>&) {}, 2);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.schedules, 2u);
}

// ---------------------------------------------------------------------------
// Wing-Gong linearizability checker: hand histories.
// ---------------------------------------------------------------------------

RecordedOp update_op(int proc, int value, std::uint64_t inv,
                     std::uint64_t resp) {
  RecordedOp op;
  op.proc = proc;
  op.is_update = true;
  op.value = value;
  op.invoked = inv;
  op.responded = resp;
  return op;
}

RecordedOp scan_op(int proc, std::vector<std::optional<int>> view,
                   std::uint64_t inv, std::uint64_t resp) {
  RecordedOp op;
  op.proc = proc;
  op.view = std::move(view);
  op.invoked = inv;
  op.responded = resp;
  return op;
}

TEST(LinCheck, AcceptsASequentialHistory) {
  SnapshotHistory h;
  h.n_procs = 2;
  h.ops = {update_op(0, 5, 1, 2), scan_op(1, {5, std::nullopt}, 3, 4)};
  const LinearizeReport r = check_linearizable_snapshot(h);
  EXPECT_TRUE(r.linearizable) << r.violation;
  EXPECT_EQ(r.max_depth, 2);
}

TEST(LinCheck, AcceptsAConcurrentScanEitherWay) {
  // The scan overlaps the update, so both old and new views are legal.
  for (const auto& view :
       {std::vector<std::optional<int>>{std::nullopt, std::nullopt},
        std::vector<std::optional<int>>{7, std::nullopt}}) {
    SnapshotHistory h;
    h.n_procs = 2;
    h.ops = {update_op(0, 7, 1, 4), scan_op(1, view, 2, 3)};
    EXPECT_TRUE(check_linearizable_snapshot(h).linearizable);
  }
}

TEST(LinCheck, RejectsAScanThatMissesACompletedUpdate) {
  SnapshotHistory h;
  h.n_procs = 2;
  h.ops = {update_op(0, 1, 1, 2),
           scan_op(1, {std::nullopt, std::nullopt}, 3, 4)};
  const LinearizeReport r = check_linearizable_snapshot(h);
  EXPECT_FALSE(r.linearizable);
  EXPECT_FALSE(r.violation.empty());
}

TEST(LinCheck, RejectsIncomparableViews) {
  // Two scans that each miss the other's observed update: no total order.
  SnapshotHistory h;
  h.n_procs = 4;
  h.ops = {update_op(0, 1, 1, 2),   update_op(1, 1, 3, 4),
           scan_op(2, {2, 1, std::nullopt, std::nullopt}, 5, 10),
           update_op(0, 2, 6, 7),   update_op(1, 2, 8, 9),
           scan_op(3, {1, 2, std::nullopt, std::nullopt}, 11, 12)};
  const LinearizeReport r = check_linearizable_snapshot(h);
  EXPECT_FALSE(r.linearizable);
}

TEST(LinCheck, FlagsMalformedHistories) {
  SnapshotHistory overlap;
  overlap.n_procs = 1;
  overlap.ops = {update_op(0, 1, 1, 5), update_op(0, 2, 2, 3)};
  EXPECT_NE(check_linearizable_snapshot(overlap).violation.find("malformed"),
            std::string::npos);

  SnapshotHistory width;
  width.n_procs = 2;
  width.ops = {scan_op(0, {std::nullopt}, 1, 2)};
  EXPECT_NE(check_linearizable_snapshot(width).violation.find("malformed"),
            std::string::npos);
}

TEST(IsAxioms, DetectsEachViolationKind) {
  using Out = std::vector<std::pair<int, int>>;
  // Legal outputs.
  EXPECT_TRUE(check_is_axioms({{0, Out{{0, 1}}},
                               {1, Out{{0, 1}, {1, 2}}}})
                  .ok());
  // Self-inclusion.
  EXPECT_FALSE(check_is_axioms({{0, Out{{1, 2}}}}).self_inclusion);
  // Containment.
  EXPECT_FALSE(check_is_axioms({{0, Out{{0, 1}}}, {1, Out{{1, 2}}}})
                   .containment);
  // Immediacy: 1 in S_0 but S_1 not in S_0.
  EXPECT_FALSE(check_is_axioms({{0, Out{{0, 1}, {1, 2}}},
                                {1, Out{{0, 1}, {1, 2}, {2, 3}}},
                                {2, Out{{0, 1}, {1, 2}, {2, 3}}}})
                   .immediacy);
}

// ---------------------------------------------------------------------------
// The real registers under the checker.
// ---------------------------------------------------------------------------

TEST(RealRegisters, AtomicSnapshotBorrowPathIsLinearizable) {
  // Force the borrow: pause a scan after its first collect, let the writer
  // move twice, and resume -- the scan must return the second write's
  // embedded view, which contains the FIRST write (update embeds its scan
  // before publishing).
  reg::AtomicSnapshot<int> snap(2);
  snap.update(0, 10);

  StepDriver driver(1);
  reg::AtomicSnapshot<int>::View view;
  int collects = 0;
  driver.spawn(0, [&] { view = snap.scan_counting(collects); });
  for (int s = 0; s < 3; ++s) ASSERT_TRUE(driver.step(0));
  // First collect done; the scanner is parked inside its second collect.
  snap.update(1, 21);
  snap.update(1, 22);
  driver.finish(0);

  EXPECT_EQ(collects, 2);  // borrowed, not re-collected
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], std::optional<int>(10));
  EXPECT_EQ(view[1], std::optional<int>(21));
}

TEST(RealRegisters, AtomicSnapshotLinearizesUnderAllInterleavings) {
  using Rec = RecordingSnapshot<reg::AtomicSnapshot<int>>;
  std::shared_ptr<Rec> rec;
  std::uint64_t histories = 0;
  const InterleaveStats stats = for_each_step_interleaving(
      2,
      [&](StepDriver& driver) {
        rec = std::make_shared<Rec>(2);
        driver.spawn(0, [rec = rec] { rec->update(0, 1); });
        driver.spawn(1, [rec = rec] { (void)rec->scan(1); });
      },
      [&](const std::vector<int>&) {
        const LinearizeReport r =
            check_linearizable_snapshot(rec->history());
        EXPECT_TRUE(r.linearizable) << r.violation;
        ++histories;
      });
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.schedules, 100u);
  EXPECT_EQ(histories, stats.schedules);
}

TEST(RealRegisters, AtomicSnapshotLinearizesOnRealThreads) {
  RecordingSnapshot<reg::AtomicSnapshot<int>> rec(3);
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&rec, p] {
      for (int i = 0; i < 4; ++i) {
        rec.update(p, 10 * p + i);
        (void)rec.scan(p);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LinearizeReport r = check_linearizable_snapshot(rec.history());
  EXPECT_TRUE(r.linearizable) << r.violation;
  EXPECT_GT(r.states_explored, 0u);
}

TEST(RealRegisters, ImmediateSnapshotAxiomsUnderAllInterleavings) {
  std::shared_ptr<reg::ImmediateSnapshot<int>> is;
  using Output = reg::ImmediateSnapshot<int>::Output;
  auto outs = std::make_shared<std::vector<Output>>();
  const InterleaveStats stats = for_each_step_interleaving(
      2,
      [&](StepDriver& driver) {
        is = std::make_shared<reg::ImmediateSnapshot<int>>(2);
        outs->assign(2, {});
        for (int p = 0; p < 2; ++p) {
          driver.spawn(p, [is, outs, p] {
            (*outs)[static_cast<std::size_t>(p)] =
                is->write_read(p, 100 + p);
          });
        }
      },
      [&](const std::vector<int>&) {
        IsOutputs recorded;
        for (int p = 0; p < 2; ++p) {
          recorded.emplace_back(p, (*outs)[static_cast<std::size_t>(p)]);
        }
        const IsAxiomsReport r = check_is_axioms(recorded);
        EXPECT_TRUE(r.ok()) << r.violation;
      });
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.schedules, 10u);
}

TEST(RealRegisters, ImmediateSnapshotAxiomsOnRealThreads) {
  reg::ImmediateSnapshot<int> is(3);
  std::vector<reg::ImmediateSnapshot<int>::Output> outs(3);
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back(
        [&is, &outs, p] { outs[static_cast<std::size_t>(p)] = is.write_read(p, p); });
  }
  for (std::thread& t : threads) t.join();
  IsOutputs recorded;
  for (int p = 0; p < 3; ++p) {
    recorded.emplace_back(p, outs[static_cast<std::size_t>(p)]);
  }
  const IsAxiomsReport r = check_is_axioms(recorded);
  EXPECT_TRUE(r.ok()) << r.violation;
}

// ---------------------------------------------------------------------------
// Broken doubles: the checker must reject them.
// ---------------------------------------------------------------------------

/// A "snapshot" that collects only once: a scan concurrent with updates can
/// return a view no sequential execution produces (it drops writes).
class SingleCollectSnapshot {
 public:
  using View = std::vector<std::optional<int>>;

  explicit SingleCollectSnapshot(int n_procs)
      : regs_(static_cast<std::size_t>(n_procs)) {}

  void update(int i, int value) {
    regs_[static_cast<std::size_t>(i)].write(value);
  }

  [[nodiscard]] View scan() const {
    View out(regs_.size());
    for (std::size_t j = 0; j < regs_.size(); ++j) {
      out[j] = regs_[j].read();
    }
    return out;
  }

 private:
  std::vector<reg::SwmrRegister<int>> regs_;
};

TEST(BrokenDoubles, SingleCollectSnapshotIsRejected) {
  // Force incomparable views: scanner 2 reads cell 0 old, cell 1 new;
  // scanner 3 reads cell 0 new, cell 1 old.  No linearization can order the
  // two (controller-sequential) updates to satisfy both.
  RecordingSnapshot<SingleCollectSnapshot> rec(4);
  rec.update(0, 1);
  rec.update(1, 1);

  StepDriver driver(4);
  driver.spawn(2, [&] { (void)rec.scan(2); });
  ASSERT_TRUE(driver.step(2));  // parked before reading cell 0
  ASSERT_TRUE(driver.step(2));  // read cell 0 = 1; parked before cell 1
  rec.update(0, 2);
  driver.spawn(3, [&] { (void)rec.scan(3); });
  driver.finish(3);  // sees (2, 1, _, _)
  rec.update(1, 2);
  driver.finish(2);  // resumes: cell 1 = 2 -> view (1, 2, _, _)

  const LinearizeReport r = check_linearizable_snapshot(rec.history());
  EXPECT_FALSE(r.linearizable);
  EXPECT_FALSE(r.violation.empty());
}

TEST(BrokenDoubles, RealSnapshotPassesTheSameForcedSchedule) {
  // The identical forcing applied to the real AtomicSnapshot must stay
  // linearizable: the double collect detects the interference.
  RecordingSnapshot<reg::AtomicSnapshot<int>> rec(4);
  rec.update(0, 1);
  rec.update(1, 1);

  StepDriver driver(4);
  driver.spawn(2, [&] { (void)rec.scan(2); });
  ASSERT_TRUE(driver.step(2));
  ASSERT_TRUE(driver.step(2));
  rec.update(0, 2);
  driver.spawn(3, [&] { (void)rec.scan(3); });
  driver.finish(3);
  rec.update(1, 2);
  driver.finish(2);

  const LinearizeReport r = check_linearizable_snapshot(rec.history());
  EXPECT_TRUE(r.linearizable) << r.violation;
}

/// An immediate snapshot whose exit test admits processors one level above
/// the caller's: outputs can violate immediacy.
class BrokenImmediateSnapshot {
 public:
  using Output = std::vector<std::pair<int, int>>;

  explicit BrokenImmediateSnapshot(int n_procs)
      : values_(static_cast<std::size_t>(n_procs)),
        levels_(static_cast<std::size_t>(n_procs)) {
    for (auto& l : levels_) l.store(kUnset, std::memory_order_relaxed);
  }

  Output write_read(int i, int value) {
    const auto ui = static_cast<std::size_t>(i);
    values_[ui].write(value);
    const int n = static_cast<int>(levels_.size());
    for (int level = n; level >= 1; --level) {
      reg::detail::step_point();
      levels_[ui].store(level, std::memory_order_release);
      std::vector<int> seen;
      for (int j = 0; j < n; ++j) {
        reg::detail::step_point();
        const int lj = levels_[static_cast<std::size_t>(j)].load(
            std::memory_order_acquire);
        // BUG: "level + 1" admits processors that announced ABOVE us.
        if (lj != kUnset && lj <= level + 1) seen.push_back(j);
      }
      if (static_cast<int>(seen.size()) >= level) {
        Output out;
        for (int j : seen) {
          out.emplace_back(j, *values_[static_cast<std::size_t>(j)].read());
        }
        return out;
      }
    }
    WFC_CHECK(false, "BrokenImmediateSnapshot: descended below level 1");
  }

 private:
  static constexpr int kUnset = 1 << 20;
  std::vector<reg::SwmrRegister<int>> values_;
  std::vector<std::atomic<int>> levels_;
};

TEST(BrokenDoubles, OffByOneImmediateSnapshotViolatesImmediacy) {
  // p2 announces level 3 and stalls; p0 then exits at level 2 having seen
  // p2 (admitted by the off-by-one test), so 2 is in S_0 -- but p2 later
  // finishes with S_2 = {0,1,2}, which is NOT a subset of S_0 = {0,2}.
  BrokenImmediateSnapshot is(3);
  std::vector<BrokenImmediateSnapshot::Output> outs(3);

  StepDriver driver(3);
  driver.spawn(2, [&] { outs[2] = is.write_read(2, 2); });
  // Value write, level-3 store, then park before the first collect read.
  for (int s = 0; s < 3; ++s) ASSERT_TRUE(driver.step(2));
  driver.spawn(0, [&] { outs[0] = is.write_read(0, 0); });
  driver.finish(0);
  driver.spawn(1, [&] { outs[1] = is.write_read(1, 1); });
  driver.finish(1);
  driver.finish(2);

  IsOutputs recorded;
  for (int p = 0; p < 3; ++p) recorded.emplace_back(p, outs[p]);
  const IsAxiomsReport r = check_is_axioms(recorded);
  EXPECT_TRUE(r.self_inclusion);
  EXPECT_FALSE(r.immediacy) << "S_0 = {0,2} yet S_2 = {0,1,2}";
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.violation.empty());
}

// ---------------------------------------------------------------------------
// §4 emulation conformance.
// ---------------------------------------------------------------------------

TEST(Conformance, CrashFreeEmulationProducesLegalHistories) {
  ConformanceOptions opt;
  opt.n_procs = 2;
  opt.shots = 1;
  opt.explore_rounds = 2;
  const ConformanceReport report = check_emulation_conformance(opt);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(report.explored.executions, 1u);
  EXPECT_EQ(report.histories_checked, report.explored.executions);
  EXPECT_GT(report.max_rounds_used, 0);
}

TEST(Conformance, SurvivesCrashInjection) {
  ConformanceOptions opt;
  opt.n_procs = 2;
  opt.shots = 1;
  opt.explore_rounds = 2;
  opt.max_crashes = 1;
  const ConformanceReport report = check_emulation_conformance(opt);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(report.explored.crashy_executions, 0u);
}

TEST(Conformance, ThreeEmulatorsTwoShots) {
  ConformanceOptions opt;
  opt.n_procs = 3;
  opt.shots = 2;
  opt.explore_rounds = 1;
  opt.max_crashes = 1;
  const ConformanceReport report = check_emulation_conformance(opt);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(report.explored.executions, 13u);  // 13 partitions + crash branches
}

TEST(Conformance, TruncatesAtTheExecutionCap) {
  ConformanceOptions opt;
  opt.n_procs = 2;
  opt.explore_rounds = 2;
  opt.max_executions = 3;
  const ConformanceReport report = check_emulation_conformance(opt);
  EXPECT_TRUE(report.explored.truncated);
  EXPECT_EQ(report.explored.executions, 3u);
}

}  // namespace
}  // namespace wfc::chk
