// Tests for the task layer: canonical task construction, the Prop 3.1
// solvability decision procedure (SAT and UNSAT directions), and execution
// of compiled decision maps (simulated, exhaustive, and real threads).
#include <gtest/gtest.h>

#include <set>

#include "runtime/adversary.hpp"
#include "tasks/canonical.hpp"
#include "tasks/decision_protocol.hpp"
#include "tasks/solvability.hpp"
#include "topology/subdivision.hpp"

namespace wfc::task {
namespace {

using topo::base_simplex;
using topo::Simplex;
using topo::VertexId;

// ---------------------------------------------------------------------------
// Task construction.
// ---------------------------------------------------------------------------

TEST(Canonical, ConsensusComplexes) {
  ConsensusTask t(2, 2);
  EXPECT_EQ(t.input().num_vertices(), 4u);
  EXPECT_EQ(t.input().num_facets(), 4u);
  EXPECT_EQ(t.output().num_facets(), 2u);  // all-0 and all-1
  EXPECT_EQ(t.name(), "consensus(n=2,m=2)");
}

TEST(Canonical, ConsensusAllows) {
  ConsensusTask t(2, 2);
  // Input edge (P0=0, P1=1).
  VertexId i00 = t.input().find_vertex("P0=0");
  VertexId i11 = t.input().find_vertex("P1=1");
  VertexId o00 = t.output().find_vertex("P0=0");
  VertexId o01 = t.output().find_vertex("P0=1");
  VertexId o10 = t.output().find_vertex("P1=0");
  Simplex in = topo::make_simplex({i00, i11});
  EXPECT_TRUE(t.allows(in, topo::make_simplex({o00, o10})));   // agree on 0
  EXPECT_FALSE(t.allows(in, topo::make_simplex({o01, o10})));  // disagree
  // Solo P0 with input 0 cannot decide 1 (validity).
  EXPECT_FALSE(t.allows({i00}, {o01}));
  EXPECT_TRUE(t.allows({i00}, {o00}));
}

TEST(Canonical, KSetConsensusComplexes) {
  KSetConsensusTask t(3, 2);
  EXPECT_EQ(t.input().num_facets(), 1u);
  EXPECT_EQ(t.output().num_vertices(), 9u);
  EXPECT_EQ(t.output().num_facets(), 21u);  // 27 assignments - 6 rainbow
}

TEST(Canonical, KSetConsensusAllows) {
  KSetConsensusTask t(3, 2);
  VertexId d00 = t.output().find_vertex("P0->0");
  VertexId d11 = t.output().find_vertex("P1->1");
  VertexId d22 = t.output().find_vertex("P2->2");
  VertexId d10 = t.output().find_vertex("P1->0");
  VertexId d12 = t.output().find_vertex("P1->2");
  Simplex all = {0, 1, 2};  // input vertex ids == processors
  EXPECT_TRUE(t.allows(all, topo::make_simplex({d00, d10})));
  EXPECT_TRUE(t.allows(all, topo::make_simplex({d00, d11})));
  EXPECT_FALSE(t.allows(all, topo::make_simplex({d00, d11, d22})));  // 3 ids
  // P1 deciding id 2 when only {0,1} participate adopts a non-participant.
  EXPECT_FALSE(t.allows(topo::make_simplex({0, 1}), {d12}));
}

TEST(Canonical, RenamingComplexes) {
  RenamingTask t(2, 3);
  EXPECT_EQ(t.output().num_vertices(), 6u);
  EXPECT_EQ(t.output().num_facets(), 6u);  // injective pairs from 3 names
  VertexId a = t.output().find_vertex("P0:1");
  VertexId b = t.output().find_vertex("P1:1");
  EXPECT_FALSE(t.allows({0, 1}, topo::make_simplex({a, b})));  // clash
}

TEST(Canonical, SimplexAgreementAllows) {
  auto sds = topo::standard_chromatic_subdivision(base_simplex(3));
  SimplexAgreementTask t(3, sds);
  // Any facet of the target is allowed for full participation.
  Simplex facet = t.output().facets()[0];
  EXPECT_TRUE(t.allows({0, 1, 2}, facet));
  // A vertex with full carrier is NOT allowed when only P0 participates.
  for (VertexId v = 0; v < t.output().num_vertices(); ++v) {
    if (t.output().vertex(v).carrier == ColorSet::full(3) &&
        t.output().vertex(v).color == 0) {
      EXPECT_FALSE(t.allows({0}, {v}));
    }
    if (t.output().vertex(v).carrier == ColorSet{0}) {
      EXPECT_TRUE(t.allows({0}, {v}));
    }
  }
}

TEST(Canonical, RenamingRequiresEnoughNames) {
  EXPECT_THROW(RenamingTask(3, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Solvability: SAT direction.
// ---------------------------------------------------------------------------

TEST(Solvability, IdentityTaskSolvableAtLevelZero) {
  IdentityTask t(base_simplex(3));
  SolveResult r = solve(t, 2);
  EXPECT_EQ(r.status, Solvability::kSolvable);
  EXPECT_EQ(r.level, 0);
}

TEST(Solvability, TrivialSetConsensusSolvable) {
  // k = n+1: everyone may decide itself; level 0.
  KSetConsensusTask t(3, 3);
  SolveResult r = solve(t, 1);
  EXPECT_EQ(r.status, Solvability::kSolvable);
  EXPECT_EQ(r.level, 0);
}

TEST(Solvability, RenamingWithEnoughNamesSolvable) {
  RenamingTask t(2, 3);
  SolveResult r = solve(t, 1);
  EXPECT_EQ(r.status, Solvability::kSolvable);
  EXPECT_EQ(r.level, 0);  // identity naming
}

TEST(Solvability, SimplexAgreementOnSdsSolvableAtLevelOne) {
  // Target A = SDS(s^2): the identity map solves it at b = 1 and no level-0
  // map exists (corners alone cannot land on interior simplices while
  // remaining carrier-respecting... in fact level 0 fails because the three
  // corner images would need to form a simplex of A).
  auto sds = topo::standard_chromatic_subdivision(base_simplex(3));
  SimplexAgreementTask t(3, sds);
  SolveResult r0 = solve_at_level(t, 0);
  EXPECT_EQ(r0.status, Solvability::kUnsolvable);
  SolveResult r1 = solve_at_level(t, 1);
  EXPECT_EQ(r1.status, Solvability::kSolvable);
}

TEST(Solvability, SimplexAgreementOnSds2NeedsLevelTwo) {
  auto sds2 = topo::iterated_sds(base_simplex(2), 2);
  SimplexAgreementTask t(2, sds2);
  SolveResult r = solve(t, 3);
  EXPECT_EQ(r.status, Solvability::kSolvable);
  EXPECT_EQ(r.level, 2);
}

TEST(Solvability, ThreeProcessorApproxAgreement) {
  // 2-dimensional approximate agreement: three processors on the grid,
  // pairwise within one step.  Solvable; one IIS round does NOT suffice on
  // grid 3 (a refutation the checker finds), two do.
  task::ApproxAgreementTask t(3, 3);
  EXPECT_EQ(solve_at_level(t, 1).status, Solvability::kUnsolvable);
  SolveResult r = solve_at_level(t, 2);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  DecisionProtocol proto(t, std::move(r));
  // Exhaustive over the all-different-corners facet.
  topo::VertexId a = t.input().find_vertex("P0=0");
  topo::VertexId b = t.input().find_vertex("P1=3");
  topo::VertexId c = t.input().find_vertex("P2=0");
  EXPECT_EQ(proto.validate_exhaustively(topo::make_simplex({a, b, c})),
            169u);
}

// ---------------------------------------------------------------------------
// Solvability: UNSAT direction (impossibility proofs per level).
// ---------------------------------------------------------------------------

TEST(Solvability, BinaryConsensusUnsolvableTwoProcs) {
  ConsensusTask t(2, 2);
  SolveResult r = solve(t, 3);
  EXPECT_EQ(r.status, Solvability::kUnsolvable);
  // Root arc consistency alone refutes consensus: the two solo corners pin
  // opposite values and no domain survives on the path between them, so no
  // branch nodes are needed at all.
  EXPECT_EQ(r.nodes_explored, 0u);
}

TEST(Solvability, BinaryConsensusUnsolvableThreeProcs) {
  // Root arc consistency refutes both levels without branching.
  ConsensusTask t(3, 2);
  SolveResult r = solve(t, 2);
  EXPECT_EQ(r.status, Solvability::kUnsolvable);
  EXPECT_EQ(r.nodes_explored, 0u);
}

TEST(Solvability, SetConsensusUnsolvable) {
  // (2,1)-set consensus == 2-processor consensus with ids: unsolvable.
  KSetConsensusTask t21(2, 1);
  EXPECT_EQ(solve(t21, 3).status, Solvability::kUnsolvable);
  // (3,2)-set consensus: the Chaudhuri conjecture instance (§1); refuted
  // per level here, for all levels by Sperner (bench_sperner, E8).
  KSetConsensusTask t32(3, 2);
  EXPECT_EQ(solve(t32, 1).status, Solvability::kUnsolvable);
}

// ---------------------------------------------------------------------------
// Compiled decision protocols.
// ---------------------------------------------------------------------------

TEST(DecisionProtocol, SetConsensusTrivialRuns) {
  KSetConsensusTask t(3, 3);
  SolveResult r = solve(t, 1);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  DecisionProtocol proto(t, std::move(r));
  rt::SynchronousAdversary adv;
  RunOutcome out = proto.run_simulated({0, 1, 2}, adv);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.decisions.size(), 3u);
}

TEST(DecisionProtocol, SimplexAgreementAllSchedulesValid) {
  auto sds = topo::standard_chromatic_subdivision(base_simplex(3));
  SimplexAgreementTask t(3, sds);
  SolveResult r = solve_at_level(t, 1);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  DecisionProtocol proto(t, std::move(r));
  // Every IIS execution, full participation: 13 executions.
  EXPECT_EQ(proto.validate_exhaustively({0, 1, 2}), 13u);
  // Sub-participation: P0 and P2 only.
  EXPECT_EQ(proto.validate_exhaustively(topo::make_simplex({0, 2})), 3u);
  // Solo.
  EXPECT_EQ(proto.validate_exhaustively({1}), 1u);
}

TEST(DecisionProtocol, SimplexAgreementDeepExhaustive) {
  auto sds2 = topo::iterated_sds(base_simplex(2), 2);
  SimplexAgreementTask t(2, sds2);
  SolveResult r = solve(t, 3);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  ASSERT_EQ(r.level, 2);
  DecisionProtocol proto(t, std::move(r));
  EXPECT_EQ(proto.validate_exhaustively({0, 1}), 9u);  // 3^2 executions
}

TEST(DecisionProtocol, RunsUnderVariousAdversaries) {
  auto sds = topo::standard_chromatic_subdivision(base_simplex(3));
  SimplexAgreementTask t(3, sds);
  SolveResult r = solve_at_level(t, 1);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  DecisionProtocol proto(t, std::move(r));

  rt::SequentialAdversary seq;
  rt::RotatingAdversary rot;
  rt::RandomAdversary rnd(3);
  for (rt::Adversary* adv : {static_cast<rt::Adversary*>(&seq),
                             static_cast<rt::Adversary*>(&rot),
                             static_cast<rt::Adversary*>(&rnd)}) {
    RunOutcome out = proto.run_simulated({0, 1, 2}, *adv);
    EXPECT_TRUE(out.valid);
  }
}

TEST(DecisionProtocol, RunsOnRealThreads) {
  auto sds = topo::standard_chromatic_subdivision(base_simplex(3));
  SimplexAgreementTask t(3, sds);
  SolveResult r = solve_at_level(t, 1);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  DecisionProtocol proto(t, std::move(r));
  for (int trial = 0; trial < 25; ++trial) {
    RunOutcome out = proto.run_threads({0, 1, 2});
    EXPECT_TRUE(out.valid);
  }
}

TEST(DecisionProtocol, LevelZeroRuns) {
  IdentityTask t(base_simplex(3));
  SolveResult r = solve(t, 1);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  DecisionProtocol proto(t, std::move(r));
  rt::SynchronousAdversary adv;
  RunOutcome out = proto.run_simulated({0, 1, 2}, adv);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.decisions, (std::vector<VertexId>{0, 1, 2}));
}

TEST(DecisionProtocol, RejectsUnsolvedResult) {
  ConsensusTask t(2, 2);
  SolveResult r = solve(t, 1);
  ASSERT_EQ(r.status, Solvability::kUnsolvable);
  EXPECT_THROW(DecisionProtocol(t, std::move(r)), std::invalid_argument);
}

// Lemma 3.1 operationally: compiled protocols decide within exactly `level`
// WriteReads on every schedule (bounded wait-free solvability).
TEST(DecisionProtocol, BoundedWaitFree) {
  auto sds2 = topo::iterated_sds(base_simplex(2), 2);
  SimplexAgreementTask t(2, sds2);
  SolveResult r = solve(t, 3);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  const int b = r.level;
  DecisionProtocol proto(t, std::move(r));
  rt::RandomAdversary adv(11);
  for (int trial = 0; trial < 20; ++trial) {
    RunOutcome out = proto.run_simulated({0, 1}, adv);
    EXPECT_TRUE(out.valid);
  }
  EXPECT_EQ(b, 2);
}

}  // namespace
}  // namespace wfc::task
