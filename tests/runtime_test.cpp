// Tests for the execution runtime: adversaries, the simulated IIS executor,
// exhaustive execution enumeration, the simulated atomic-snapshot model, and
// the real-thread IIS executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_iis.hpp"
#include "runtime/sim_snapshot.hpp"
#include "runtime/thread_iis.hpp"
#include "topology/subdivision.hpp"

namespace wfc::rt {
namespace {

// Randomized-adversary tests derive their seeds from this one value,
// overridable with WFC_TEST_SEED and logged so failures can be replayed.
const std::uint64_t kSuiteSeed = logged_test_seed("runtime_test", 99);

TEST(Adversary, SynchronousIsOneBlock) {
  SynchronousAdversary adv;
  Partition p = adv.partition(0, ColorSet{0, 2, 3});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], (ColorSet{0, 2, 3}));
}

TEST(Adversary, SequentialIsSingletons) {
  SequentialAdversary adv;
  Partition p = adv.partition(0, ColorSet{1, 3});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], ColorSet{1});
  EXPECT_EQ(p[1], ColorSet{3});
}

TEST(Adversary, RotatingChangesLeader) {
  RotatingAdversary adv;
  Partition p0 = adv.partition(0, ColorSet{0, 1, 2});
  Partition p1 = adv.partition(1, ColorSet{0, 1, 2});
  EXPECT_EQ(p0[0], ColorSet{0});
  EXPECT_EQ(p1[0], ColorSet{1});
}

TEST(Adversary, LateVictimAlwaysLast) {
  LateAdversary adv(1);
  Partition p = adv.partition(0, ColorSet{0, 1, 2});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], (ColorSet{0, 2}));
  EXPECT_EQ(p[1], ColorSet{1});
  EXPECT_NO_THROW(validate_partition(p, ColorSet{0, 1, 2}));
  // Victim absent or alone: single synchronous block.
  EXPECT_EQ(adv.partition(0, ColorSet{0, 2}).size(), 1u);
  EXPECT_EQ(adv.partition(0, ColorSet{1}).size(), 1u);
}

TEST(Adversary, LateVictimSeesEveryoneButIsUnseen) {
  LateAdversary adv(2);
  std::map<int, int> view_size;
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> on_view =
      [&](int p, int, const IisSnapshot<int>& snap) {
        view_size[p] = static_cast<int>(snap.size());
        return Step<int>::halt();
      };
  run_iis<int>(3, adv, 1, init, on_view);
  EXPECT_EQ(view_size[0], 2);  // the early block sees itself + peer
  EXPECT_EQ(view_size[1], 2);
  EXPECT_EQ(view_size[2], 3);  // the victim sees everyone
}

TEST(Adversary, RandomPartitionsValid) {
  RandomAdversary adv(kSuiteSeed);
  for (int r = 0; r < 200; ++r) {
    Partition p = adv.partition(r, ColorSet{0, 1, 2, 4});
    EXPECT_NO_THROW(validate_partition(p, ColorSet{0, 1, 2, 4}));
  }
}

TEST(Adversary, FixedReplaysAndRepairs) {
  FixedAdversary adv({{ColorSet{0}, ColorSet{1, 2}}});
  Partition p = adv.partition(0, ColorSet{0, 1, 2});
  ASSERT_EQ(p.size(), 2u);
  // Round beyond the list: synchronous fallback.
  Partition q = adv.partition(1, ColorSet{0, 2});
  ASSERT_EQ(q.size(), 1u);
  // A halted processor in the fixed list is dropped.
  Partition r = adv.partition(0, ColorSet{1, 2});
  EXPECT_NO_THROW(validate_partition(r, ColorSet{1, 2}));
}

TEST(Adversary, ValidatePartitionCatchesViolations) {
  // Overlap.
  EXPECT_THROW(
      validate_partition({ColorSet{0, 1}, ColorSet{1}}, ColorSet{0, 1}),
      std::logic_error);
  // Missing processor.
  EXPECT_THROW(validate_partition({ColorSet{0}}, ColorSet{0, 1}),
               std::logic_error);
  // Inactive processor scheduled.
  EXPECT_THROW(validate_partition({ColorSet{0, 1}}, ColorSet{0}),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Simulated IIS executor.
// ---------------------------------------------------------------------------

// A protocol that runs `rounds` rounds carrying the count of processors seen.
struct CountingProtocol {
  int rounds;
  std::map<int, int> last_seen;  // proc -> size of final view

  std::function<int(int)> init() {
    return [](int p) { return p; };
  }
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> on_view() {
    return [this](int p, int round, const IisSnapshot<int>& snap) {
      last_seen[p] = static_cast<int>(snap.size());
      if (round + 1 >= rounds) return Step<int>::halt();
      return Step<int>::cont(static_cast<int>(snap.size()));
    };
  }
};

TEST(SimIis, SynchronousEveryoneSeesEveryone) {
  CountingProtocol proto{2, {}};
  SynchronousAdversary adv;
  auto init = proto.init();
  auto view = proto.on_view();
  IisRunStats stats = run_iis<int>(3, adv, 10, init, view);
  EXPECT_EQ(stats.rounds_executed, 2);
  for (int p = 0; p < 3; ++p) EXPECT_EQ(proto.last_seen[p], 3);
}

TEST(SimIis, SequentialFirstSeesOnlySelf) {
  CountingProtocol proto{1, {}};
  SequentialAdversary adv;
  auto init = proto.init();
  auto view = proto.on_view();
  run_iis<int>(3, adv, 10, init, view);
  EXPECT_EQ(proto.last_seen[0], 1);
  EXPECT_EQ(proto.last_seen[1], 2);
  EXPECT_EQ(proto.last_seen[2], 3);
}

TEST(SimIis, SnapshotsArePrefixClosed) {
  // In every round, views of the same round must be ordered by containment
  // and self-inclusive (the §3.5 properties in simulated form).
  std::map<std::pair<int, int>, IisSnapshot<int>> views;  // (round, proc)
  std::function<int(int)> init = [](int p) { return p * 11; };
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> on_view =
      [&](int p, int round, const IisSnapshot<int>& snap) {
        views[{round, p}] = snap;
        return round < 2 ? Step<int>::cont(p * 11) : Step<int>::halt();
      };
  RandomAdversary adv(kSuiteSeed + 1);
  run_iis<int>(4, adv, 10, init, on_view);

  auto contains = [](const IisSnapshot<int>& s, int id) {
    return std::any_of(s.begin(), s.end(),
                       [id](const auto& e) { return e.first == id; });
  };
  auto subset = [&](const IisSnapshot<int>& a, const IisSnapshot<int>& b) {
    return std::all_of(a.begin(), a.end(), [&](const auto& e) {
      return contains(b, e.first);
    });
  };
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      const auto& si = views[{round, i}];
      EXPECT_TRUE(contains(si, i));
      for (int j = 0; j < 4; ++j) {
        const auto& sj = views[{round, j}];
        EXPECT_TRUE(subset(si, sj) || subset(sj, si));
        if (contains(sj, i)) {
          EXPECT_TRUE(subset(si, sj));
        }
      }
    }
  }
}

TEST(SimIis, ThrowsWhenProtocolOutlivesRounds) {
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> never_halt =
      [](int, int, const IisSnapshot<int>&) { return Step<int>::cont(0); };
  SynchronousAdversary adv;
  EXPECT_THROW(run_iis<int>(2, adv, 3, init, never_halt), std::logic_error);
}

TEST(SimIis, HaltedProcessorsLeaveTheSchedule) {
  // Processor 0 halts after round 0; rounds afterwards only schedule 1, 2.
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> on_view =
      [](int p, int round, const IisSnapshot<int>&) {
        if (p == 0) return Step<int>::halt();
        return round < 2 ? Step<int>::cont(p) : Step<int>::halt();
      };
  SynchronousAdversary adv;
  IisRunStats stats = run_iis<int>(3, adv, 10, init, on_view);
  EXPECT_EQ(stats.rounds_taken[0], 1);
  EXPECT_EQ(stats.rounds_taken[1], 3);
  ASSERT_GE(stats.schedule.size(), 2u);
  EXPECT_EQ(stats.schedule[1][0], (ColorSet{1, 2}));
}

TEST(SimIis, ExecutionEnumerationCountMatchesFubiniProduct) {
  // One round, no halting: executions == ordered partitions of {0,1,2}.
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> one_round =
      [](int, int, const IisSnapshot<int>&) { return Step<int>::halt(); };
  int count = 0;
  for_each_iis_execution<int>(3, 5, init, one_round,
                              [&](const std::vector<Partition>&) { ++count; });
  EXPECT_EQ(count, 13);

  // Two rounds: 13 * 13.
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> two_rounds =
      [](int, int round, const IisSnapshot<int>&) {
        return round == 0 ? Step<int>::cont(0) : Step<int>::halt();
      };
  count = 0;
  for_each_iis_execution<int>(3, 5, init, two_rounds,
                              [&](const std::vector<Partition>&) { ++count; });
  EXPECT_EQ(count, 13 * 13);
}

TEST(SimIis, EnumeratedViewsMatchSdsVertexCount) {
  // Collect all distinct (proc, view) pairs over all 1-round executions of 3
  // processors: must equal the 12 vertices of SDS(s^2) (Lemma 3.2).
  std::set<std::pair<int, std::vector<std::pair<int, int>>>> distinct;
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> on_view =
      [&](int p, int, const IisSnapshot<int>& snap) {
        distinct.insert({p, snap});
        return Step<int>::halt();
      };
  for_each_iis_execution<int>(3, 1, init, on_view,
                              [](const std::vector<Partition>&) {});
  EXPECT_EQ(distinct.size(),
            topo::standard_chromatic_subdivision(topo::base_simplex(3))
                .num_vertices());
}

// ---------------------------------------------------------------------------
// Simulated atomic-snapshot model.
// ---------------------------------------------------------------------------

TEST(SimSnapshot, FairScheduleRunsFigureOneProtocol) {
  // Figure 1 with k = 2 shots: write, scan, write, scan, halt.
  std::function<int(int)> init = [](int p) { return 100 + p; };
  std::map<int, MemoryView<int>> final_views;
  std::function<Step<int>(int, int, const MemoryView<int>&)> on_scan =
      [&](int p, int k, const MemoryView<int>& view) {
        if (k == 2) {
          final_views[p] = view;
          return Step<int>::halt();
        }
        return Step<int>::cont(200 + p);
      };
  SnapshotRunStats stats =
      run_snapshot_model<int>(3, fair_schedule(3, 4), init, on_scan);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(stats.ops_taken[static_cast<std::size_t>(p)], 4);
    // After the fair schedule's second round of writes everyone sees the
    // second values.
    for (int q = 0; q < 3; ++q) {
      EXPECT_EQ(final_views[p][static_cast<std::size_t>(q)], 200 + q);
    }
  }
}

TEST(SimSnapshot, SoloProcessorSeesOnlyItself) {
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const MemoryView<int>&)> on_scan =
      [&](int p, int, const MemoryView<int>& view) {
        EXPECT_TRUE(view[0].has_value());
        if (p == 0) {
          // P0 runs solo: P1 has not written yet.
          EXPECT_FALSE(view[1].has_value());
        } else {
          // P1 runs after P0 finished and must see it.
          EXPECT_TRUE(view[1].has_value());
        }
        return Step<int>::halt();
      };
  // Only processor 0 is scheduled until it halts; then 1 runs.
  std::vector<Color> sched{0, 0, 1, 1};
  run_snapshot_model<int>(2, sched, init, on_scan);
}

TEST(SimSnapshot, ThrowsOnExhaustedSchedule) {
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const MemoryView<int>&)> on_scan =
      [](int, int, const MemoryView<int>&) { return Step<int>::halt(); };
  EXPECT_THROW(run_snapshot_model<int>(2, {0, 0}, init, on_scan),
               std::logic_error);
}

TEST(SimSnapshot, InterleavingCount) {
  int count = 0;
  for_each_interleaving(2, 2, [&](const std::vector<Color>& s) {
    EXPECT_EQ(s.size(), 4u);
    ++count;
  });
  EXPECT_EQ(count, 6);  // C(4,2)
  count = 0;
  for_each_interleaving(3, 2, [&](const std::vector<Color>&) { ++count; });
  EXPECT_EQ(count, 90);  // 6!/(2!2!2!)
}

TEST(SimSnapshot, InterleavingsAreDistinct) {
  std::set<std::vector<Color>> seen;
  for_each_interleaving(2, 3, [&](const std::vector<Color>& s) {
    EXPECT_TRUE(seen.insert(s).second);
  });
  EXPECT_EQ(seen.size(), 20u);  // C(6,3)
}

// ---------------------------------------------------------------------------
// Real-thread IIS executor.
// ---------------------------------------------------------------------------

TEST(ThreadIis, RunsFullInformationProtocol) {
  constexpr int kProcs = 4;
  constexpr int kRounds = 3;
  std::array<std::atomic<int>, kProcs> final_size{};
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> on_view =
      [&](int p, int round, const IisSnapshot<int>& snap) {
        if (round + 1 == kRounds) {
          final_size[static_cast<std::size_t>(p)] =
              static_cast<int>(snap.size());
          return Step<int>::halt();
        }
        return Step<int>::cont(p);
      };
  auto rounds_taken = run_iis_threads<int>(kProcs, kRounds, init, on_view);
  for (int p = 0; p < kProcs; ++p) {
    EXPECT_EQ(rounds_taken[static_cast<std::size_t>(p)], kRounds);
    EXPECT_GE(final_size[static_cast<std::size_t>(p)].load(), 1);
    EXPECT_LE(final_size[static_cast<std::size_t>(p)].load(), kProcs);
  }
}

TEST(ThreadIis, ThrowsWhenARunnerNeverHalts) {
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const IisSnapshot<int>&)> never =
      [](int, int, const IisSnapshot<int>&) { return Step<int>::cont(1); };
  EXPECT_THROW(run_iis_threads<int>(2, 2, init, never), std::logic_error);
}

}  // namespace
}  // namespace wfc::rt
