// The model-equivalence circle, run in both directions, plus randomized
// cross-validation of the two independent decision procedures.
//
//   * reverse emulation: IIS protocols executed INSIDE the atomic-snapshot
//     model (per-round levels algorithm) -- §3.5's easy direction;
//   * snapshot renaming from one immediate snapshot ([8]);
//   * deterministic schedule record/replay;
//   * random 2-processor tasks: connectivity criterion vs Prop 3.1 search.
#include <gtest/gtest.h>

#include <set>

#include "core/wfc.hpp"

namespace wfc {
namespace {

// ---------------------------------------------------------------------------
// Reverse emulation: IIS in the snapshot model.
// ---------------------------------------------------------------------------

// The counting protocol from the runtime tests, now run inside the
// atomic-snapshot model: per-round views must still satisfy the §3.5
// immediate-snapshot properties.
TEST(ReverseEmulation, ViewsSatisfyImmediateSnapshotProperties) {
  constexpr int kProcs = 3;
  constexpr int kRounds = 3;
  std::map<std::pair<int, int>, rt::IisSnapshot<int>> views;
  std::function<int(int)> init = [](int p) { return 10 * p; };
  std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)> on_view =
      [&](int p, int round, const rt::IisSnapshot<int>& snap) {
        views[{round, p}] = snap;
        return round + 1 < kRounds ? rt::Step<int>::cont(10 * p)
                                   : rt::Step<int>::halt();
      };
  emu::ReverseEmulationStats stats = emu::run_iis_in_snapshot_model<int>(
      kProcs, emu::reverse_emulation_schedule(kProcs, kRounds), init, on_view);
  for (int p = 0; p < kProcs; ++p) {
    EXPECT_EQ(stats.rounds_completed[static_cast<std::size_t>(p)], kRounds);
  }

  auto contains = [](const rt::IisSnapshot<int>& s, int id) {
    return std::any_of(s.begin(), s.end(),
                       [id](const auto& e) { return e.first == id; });
  };
  auto subset = [&](const rt::IisSnapshot<int>& a,
                    const rt::IisSnapshot<int>& b) {
    return std::all_of(a.begin(), a.end(), [&](const auto& e) {
      return contains(b, e.first);
    });
  };
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kProcs; ++i) {
      const auto& si = views[{round, i}];
      EXPECT_TRUE(contains(si, i)) << "round " << round << " proc " << i;
      for (int j = 0; j < kProcs; ++j) {
        const auto& sj = views[{round, j}];
        EXPECT_TRUE(subset(si, sj) || subset(sj, si));
        if (contains(sj, i)) {
          EXPECT_TRUE(subset(si, sj));
        }
      }
    }
  }
}

TEST(ReverseEmulation, EveryInterleavingYieldsLegalSdsViews) {
  // Over ALL 2-processor atomic-snapshot interleavings with enough
  // appearances, the emulated one-round views must locate inside SDS(s^1)
  // -- i.e. the reverse emulation never produces a view the IIS model could
  // not.  (3 processors are covered by random sampling below; full
  // enumeration there is ~10^7 schedules.)
  proto::SdsChain chain(topo::base_simplex(2), 1);
  int executions = 0;
  rt::for_each_interleaving(2, 6, [&](const std::vector<Color>& sched) {
    ++executions;
    std::function<int(int)> init = [](int p) { return p; };
    std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)>
        on_view = [&](int p, int, const rt::IisSnapshot<int>& snap) {
          topo::Simplex seen;
          for (const auto& [q, v] : snap) {
            seen.push_back(static_cast<topo::VertexId>(v));
          }
          // Throws (failing the test) if not a legal SDS vertex.
          (void)chain.locate(1, p, topo::make_simplex(std::move(seen)));
          return rt::Step<int>::halt();
        };
    emu::run_iis_in_snapshot_model<int>(2, sched, init, on_view);
  });
  EXPECT_EQ(executions, 924);  // C(12, 6)
}

TEST(ReverseEmulation, RandomSchedulesYieldLegalSdsViews) {
  proto::SdsChain chain(topo::base_simplex(3), 2);
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    // Random shuffle of a sufficient schedule, plus a fair tail so nobody
    // is starved past the schedule's end.
    std::vector<Color> sched = emu::reverse_emulation_schedule(3, 2);
    rng.shuffle(sched);
    auto tail = emu::reverse_emulation_schedule(3, 2);
    sched.insert(sched.end(), tail.begin(), tail.end());

    std::function<topo::VertexId(int)> init = [](int p) {
      return static_cast<topo::VertexId>(p);
    };
    std::function<rt::Step<topo::VertexId>(
        int, int, const rt::IisSnapshot<topo::VertexId>&)>
        on_view = [&](int p, int round,
                      const rt::IisSnapshot<topo::VertexId>& snap) {
          topo::Simplex seen;
          for (const auto& [q, v] : snap) seen.push_back(v);
          const topo::VertexId next =
              chain.locate(round + 1, p, topo::make_simplex(std::move(seen)));
          return round == 0 ? rt::Step<topo::VertexId>::cont(next)
                            : rt::Step<topo::VertexId>::halt();
        };
    emu::run_iis_in_snapshot_model<topo::VertexId>(3, sched, init, on_view);
  }
}

TEST(ReverseEmulation, DecisionProtocolSolvesTaskInSnapshotModel) {
  // Full circle: a task solved via the characterization, executed inside
  // the atomic-snapshot model through the reverse emulation.
  auto target = topo::standard_chromatic_subdivision(topo::base_simplex(3));
  task::SimplexAgreementTask agreement(3, target);
  task::SolveResult solved = task::solve(agreement, 1);
  ASSERT_EQ(solved.status, task::Solvability::kSolvable);
  const auto& chain = *solved.chain;
  const int b = solved.level;

  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<topo::VertexId> finals(3, topo::kNoVertex);
    std::function<topo::VertexId(int)> init = [](int p) {
      return static_cast<topo::VertexId>(p);
    };
    std::function<rt::Step<topo::VertexId>(
        int, int, const rt::IisSnapshot<topo::VertexId>&)>
        on_view = [&](int p, int round,
                      const rt::IisSnapshot<topo::VertexId>& snap) {
          topo::Simplex seen;
          for (const auto& [q, v] : snap) seen.push_back(v);
          const topo::VertexId next =
              chain.locate(round + 1, p, topo::make_simplex(std::move(seen)));
          if (round + 1 == b) {
            finals[static_cast<std::size_t>(p)] = next;
            return rt::Step<topo::VertexId>::halt();
          }
          return rt::Step<topo::VertexId>::cont(next);
        };
    // Random-ish but sufficient schedule: shuffle a fair schedule.
    std::vector<Color> sched = emu::reverse_emulation_schedule(3, b);
    rng.shuffle(sched);
    // Shuffling can starve someone; append a fair tail as safety.
    auto tail = emu::reverse_emulation_schedule(3, b);
    sched.insert(sched.end(), tail.begin(), tail.end());
    emu::run_iis_in_snapshot_model<topo::VertexId>(3, sched, init, on_view);

    topo::Simplex decided;
    for (topo::VertexId v : finals) {
      ASSERT_NE(v, topo::kNoVertex);
      decided.push_back(solved.decision[v]);
    }
    decided = topo::make_simplex(std::move(decided));
    EXPECT_TRUE(agreement.output().contains_simplex(decided));
    EXPECT_TRUE(agreement.allows({0, 1, 2}, decided));
  }
}

TEST(ReverseEmulation, CostWithinTheoreticalBound) {
  constexpr int kProcs = 4;
  constexpr int kRounds = 3;
  std::function<int(int)> init = [](int p) { return p; };
  std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)> on_view =
      [&](int, int round, const rt::IisSnapshot<int>&) {
        return round + 1 < kRounds ? rt::Step<int>::cont(0)
                                   : rt::Step<int>::halt();
      };
  emu::ReverseEmulationStats stats = emu::run_iis_in_snapshot_model<int>(
      kProcs, emu::reverse_emulation_schedule(kProcs, kRounds), init, on_view);
  for (int p = 0; p < kProcs; ++p) {
    EXPECT_LE(stats.ops_taken[static_cast<std::size_t>(p)],
              2 * kRounds * (kProcs + 1));
  }
}

// ---------------------------------------------------------------------------
// Snapshot renaming ([8]).
// ---------------------------------------------------------------------------

TEST(SnapshotRenaming, NameFormula) {
  EXPECT_EQ(task::snapshot_renaming_name(5, {5}), 0);          // solo -> name 0
  EXPECT_EQ(task::snapshot_renaming_name(2, {2, 7}), 1);       // pair, rank 0
  EXPECT_EQ(task::snapshot_renaming_name(7, {2, 7}), 2);       // pair, rank 1
  EXPECT_EQ(task::snapshot_renaming_name(4, {1, 4, 9}), 4);    // triple, rank 1
  EXPECT_THROW((void)task::snapshot_renaming_name(3, {1, 2}), std::invalid_argument);
}

TEST(SnapshotRenaming, ExhaustiveDistinctness) {
  EXPECT_EQ(task::validate_snapshot_renaming(1), 1u);
  EXPECT_EQ(task::validate_snapshot_renaming(2), 3u);
  EXPECT_EQ(task::validate_snapshot_renaming(3), 13u);
  EXPECT_EQ(task::validate_snapshot_renaming(4), 75u);
}

TEST(SnapshotRenaming, AdversarialRuns) {
  rt::RandomAdversary adv(13);
  for (int trial = 0; trial < 50; ++trial) {
    task::RenamingRun run = task::run_snapshot_renaming({0, 1, 2, 3}, adv);
    EXPECT_TRUE(run.distinct);
    EXPECT_LT(run.max_name, 4 * 5 / 2);
  }
}

TEST(SnapshotRenaming, AdaptiveBound) {
  // Two participants out of a large id space still land below p(p+1)/2 = 3.
  rt::SynchronousAdversary adv;
  task::RenamingRun run = task::run_snapshot_renaming({9, 17}, adv);
  EXPECT_TRUE(run.distinct);
  EXPECT_LT(run.max_name, 3);
}

TEST(SnapshotRenaming, RealThreads) {
  for (int trial = 0; trial < 25; ++trial) {
    task::RenamingRun run = task::run_snapshot_renaming_threads({0, 1, 2, 3, 4});
    EXPECT_TRUE(run.distinct);
    EXPECT_LT(run.max_name, 5 * 6 / 2);
  }
}

// ---------------------------------------------------------------------------
// Schedule record / replay.
// ---------------------------------------------------------------------------

TEST(Replay, RecordedScheduleReproducesRun) {
  emu::FullInfoClient client_a(2);
  rt::RandomAdversary random_adv(99);
  emu::EmulationResult first = emu::run_emulation_simulated(
      3, random_adv, 256, client_a.init(), client_a.on_scan());

  // Replay the recorded partitions with a FixedAdversary: identical logs.
  // (The schedule is embedded in the per-op round stamps; rebuild it by
  // re-running the recording adversary deterministically.)
  emu::FullInfoClient client_b(2);
  rt::RandomAdversary same_seed(99);
  emu::EmulationResult second = emu::run_emulation_simulated(
      3, same_seed, 256, client_b.init(), client_b.on_scan());

  ASSERT_EQ(first.ops.size(), second.ops.size());
  for (std::size_t p = 0; p < first.ops.size(); ++p) {
    ASSERT_EQ(first.ops[p].size(), second.ops[p].size());
    for (std::size_t i = 0; i < first.ops[p].size(); ++i) {
      EXPECT_EQ(first.ops[p][i].start_round, second.ops[p][i].start_round);
      EXPECT_EQ(first.ops[p][i].end_round, second.ops[p][i].end_round);
      EXPECT_EQ(first.ops[p][i].view, second.ops[p][i].view);
    }
  }
}

TEST(Replay, FixedAdversaryReplaysIisSchedule) {
  // Record an IIS run's schedule, then replay it via FixedAdversary.
  std::function<int(int)> init = [](int p) { return p; };
  std::vector<std::vector<int>> sizes_a, sizes_b;
  auto collect = [](std::vector<std::vector<int>>& out) {
    return [&out](int p, int round, const rt::IisSnapshot<int>& snap) {
      if (static_cast<int>(out.size()) <= round) out.resize(round + 1);
      out[round].push_back(static_cast<int>(snap.size()) * 10 + p);
      return round < 2 ? rt::Step<int>::cont(p) : rt::Step<int>::halt();
    };
  };
  rt::RandomAdversary adv(7);
  std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)> fa =
      collect(sizes_a);
  rt::IisRunStats stats = rt::run_iis<int>(4, adv, 8, init, fa);

  rt::FixedAdversary replay(stats.schedule);
  std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)> fb =
      collect(sizes_b);
  rt::run_iis<int>(4, replay, 8, init, fb);
  EXPECT_EQ(sizes_a, sizes_b);
}

// ---------------------------------------------------------------------------
// Random 2-processor tasks: two independent deciders must agree.
// ---------------------------------------------------------------------------

/// A random 2-processor task: single input edge, random bipartite output
/// complex, random face-closed Delta (per-vertex solo permissions plus
/// per-edge permissions consistent with them).
class RandomTask final : public task::Task {
 public:
  RandomTask(Rng& rng, int outs_per_color)
      : input_(topo::base_simplex(2)), output_(2) {
    std::vector<topo::VertexId> by_color[2];
    for (Color c = 0; c < 2; ++c) {
      for (int i = 0; i < outs_per_color; ++i) {
        by_color[c].push_back(output_.add_vertex(
            c, "o" + std::to_string(c) + "_" + std::to_string(i),
            ColorSet::single(c)));
      }
    }
    // Random edges (ensure every vertex appears in at least one facet so
    // the complex stays well-formed).
    for (Color c = 0; c < 2; ++c) {
      for (topo::VertexId v : by_color[c]) {
        const auto& other = by_color[1 - c];
        output_.add_facet(topo::make_simplex(
            {v, other[rng.below(other.size())]}));
      }
    }
    for (int extra = 0; extra < outs_per_color; ++extra) {
      output_.add_facet(topo::make_simplex(
          {by_color[0][rng.below(by_color[0].size())],
           by_color[1][rng.below(by_color[1].size())]}));
    }
    // Random Delta: solo permissions per input vertex; edge permissions =
    // random subset of output edges (face closure handled in allows()).
    solo_allowed_.assign(output_.num_vertices(), std::vector<bool>(2, false));
    for (topo::VertexId w = 0; w < output_.num_vertices(); ++w) {
      const Color c = output_.vertex(w).color;
      solo_allowed_[w][static_cast<std::size_t>(c)] = rng.below(100) < 60;
    }
    // Ensure at least one solo option per processor.
    for (Color c = 0; c < 2; ++c) {
      solo_allowed_[by_color[c][0]][static_cast<std::size_t>(c)] = true;
    }
    for (const topo::Simplex& f : output_.facets()) {
      if (rng.below(100) < 55) edge_allowed_.insert(f);
    }
  }

  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return input_;
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return output_;
  }
  [[nodiscard]] std::string name() const override { return "random"; }

  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override {
    if (out.empty()) return true;
    if (in.size() == 1) {
      // Solo: single own-colored decision from the solo set.
      if (out.size() != 1) return false;
      const Color c = input_.vertex(in[0]).color;
      return solo_allowed_[out[0]][static_cast<std::size_t>(c)];
    }
    // Both participating: faces of allowed edges, plus any vertex of an
    // allowed edge (face closure), plus solo-allowed vertices (a processor
    // that ran alone before the other showed up must stay permitted).
    if (out.size() == 2) return edge_allowed_.count(out) > 0;
    const topo::VertexId w = out[0];
    const Color c = output_.vertex(w).color;
    if (solo_allowed_[w][static_cast<std::size_t>(c)]) return true;
    for (const topo::Simplex& e : edge_allowed_) {
      if (e[0] == w || e[1] == w) return true;
    }
    return false;
  }

 private:
  topo::ChromaticComplex input_;
  topo::ChromaticComplex output_;
  std::vector<std::vector<bool>> solo_allowed_;
  std::set<topo::Simplex> edge_allowed_;
};

TEST(RandomTasks, CriterionAgreesWithSearch) {
  Rng rng(20260706);
  int solvable = 0, unsolvable = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomTask t(rng, 3);
    task::TwoProcVerdict fast = task::decide_two_processors(t);
    if (fast.solvable && fast.level_lower_bound <= 3) {
      ++solvable;
      task::SolveResult slow = task::solve(t, fast.level_lower_bound);
      EXPECT_EQ(slow.status, task::Solvability::kSolvable) << "trial " << trial;
      EXPECT_EQ(slow.level, fast.level_lower_bound) << "trial " << trial;
    } else if (!fast.solvable) {
      ++unsolvable;
      task::SolveResult slow = task::solve(t, 2);
      EXPECT_EQ(slow.status, task::Solvability::kUnsolvable)
          << "trial " << trial;
    }
  }
  // The generator must actually exercise both outcomes.
  EXPECT_GT(solvable, 5);
  EXPECT_GT(unsolvable, 5);
}

}  // namespace
}  // namespace wfc
