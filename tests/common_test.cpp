// Unit tests for the common substrate: ColorSet, Rng, and linear algebra.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/assert.hpp"
#include "common/color_set.hpp"
#include "common/linalg.hpp"
#include "common/rng.hpp"

namespace wfc {
namespace {

TEST(ColorSet, EmptyAndSingle) {
  ColorSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);

  ColorSet s = ColorSet::single(5);
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
}

TEST(ColorSet, FullSet) {
  ColorSet f = ColorSet::full(4);
  EXPECT_EQ(f.size(), 4);
  for (Color c = 0; c < 4; ++c) EXPECT_TRUE(f.contains(c));
  EXPECT_FALSE(f.contains(4));
  EXPECT_EQ(ColorSet::full(kMaxColors).size(), kMaxColors);
}

TEST(ColorSet, WithWithout) {
  ColorSet s;
  s = s.with(2).with(7).with(2);
  EXPECT_EQ(s.size(), 2);
  s = s.without(2);
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.contains(7));
  // Removing an absent color is a no-op.
  EXPECT_EQ(s.without(3), s);
}

TEST(ColorSet, SetAlgebra) {
  ColorSet a{0, 1, 2};
  ColorSet b{2, 3};
  EXPECT_EQ(a.unite(b), (ColorSet{0, 1, 2, 3}));
  EXPECT_EQ(a.intersect(b), ColorSet{2});
  EXPECT_EQ(a.minus(b), (ColorSet{0, 1}));
  EXPECT_TRUE((ColorSet{1, 2}).subset_of(a));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(ColorSet().subset_of(a));
}

TEST(ColorSet, IterationInOrder) {
  ColorSet s{9, 1, 4};
  std::vector<Color> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<Color>{1, 4, 9}));
  EXPECT_EQ(s.min(), 1);
}

TEST(ColorSet, ToString) {
  EXPECT_EQ((ColorSet{2, 0}).to_string(), "{0,2}");
  EXPECT_EQ(ColorSet().to_string(), "{}");
}

TEST(ColorSet, RangeChecks) {
  EXPECT_THROW(ColorSet::single(-1), std::invalid_argument);
  EXPECT_THROW(ColorSet::single(32), std::invalid_argument);
  EXPECT_THROW((void)ColorSet().min(), std::invalid_argument);
}

TEST(ColorSet, SubsetEnumerationCount) {
  int count = 0;
  for_each_nonempty_subset(ColorSet::full(5), [&](ColorSet s) {
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(s.subset_of(ColorSet::full(5)));
    ++count;
  });
  EXPECT_EQ(count, 31);  // 2^5 - 1
}

TEST(ColorSet, SubsetEnumerationDistinct) {
  std::set<std::uint32_t> seen;
  for_each_nonempty_subset(ColorSet{1, 3, 6}, [&](ColorSet s) {
    EXPECT_TRUE(seen.insert(s.mask()).second);
  });
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BetweenCoversRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.between(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Linalg, SolveIdentity) {
  linalg::Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = 1;
  std::vector<double> x;
  ASSERT_TRUE(linalg::solve(a, {3.0, -2.0}, x));
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(Linalg, SolveGeneral) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  linalg::Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = -1;
  std::vector<double> x;
  ASSERT_TRUE(linalg::solve(a, {5.0, 1.0}, x));
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Linalg, SolveSingular) {
  linalg::Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  std::vector<double> x;
  EXPECT_FALSE(linalg::solve(a, {1.0, 2.0}, x));
}

TEST(Linalg, SolveNeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  linalg::Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  std::vector<double> x;
  ASSERT_TRUE(linalg::solve(a, {7.0, 9.0}, x));
  EXPECT_NEAR(x[0], 9.0, 1e-12);
  EXPECT_NEAR(x[1], 7.0, 1e-12);
}

TEST(Linalg, Determinant) {
  linalg::Matrix a(3, 3);
  // Diagonal 2, 3, 4 -> det 24.
  a.at(0, 0) = 2;
  a.at(1, 1) = 3;
  a.at(2, 2) = 4;
  EXPECT_NEAR(linalg::determinant(a), 24.0, 1e-9);
  // Swap two rows -> sign flips.
  linalg::Matrix b(2, 2);
  b.at(0, 1) = 1;
  b.at(1, 0) = 1;
  EXPECT_NEAR(linalg::determinant(b), -1.0, 1e-12);
}

TEST(Linalg, BarycentricInsideTriangle) {
  // Unit barycentric frame in R^3.
  std::vector<std::vector<double>> verts = {
      {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<double> out;
  ASSERT_TRUE(linalg::barycentric_coords(verts, {0.2, 0.3, 0.5}, out));
  EXPECT_NEAR(out[0], 0.2, 1e-9);
  EXPECT_NEAR(out[1], 0.3, 1e-9);
  EXPECT_NEAR(out[2], 0.5, 1e-9);
  EXPECT_TRUE(linalg::coords_nonnegative(out));
}

TEST(Linalg, BarycentricOutside) {
  std::vector<std::vector<double>> verts = {
      {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<double> out;
  ASSERT_TRUE(linalg::barycentric_coords(verts, {1.5, -0.25, -0.25}, out));
  EXPECT_FALSE(linalg::coords_nonnegative(out));
}

TEST(Linalg, BarycentricSubSimplexInAmbient) {
  // An edge inside the 2-simplex coordinate frame: point on the edge.
  std::vector<std::vector<double>> verts = {{1, 0, 0}, {0, 1, 0}};
  std::vector<double> out;
  ASSERT_TRUE(linalg::barycentric_coords(verts, {0.75, 0.25, 0.0}, out));
  EXPECT_NEAR(out[0], 0.75, 1e-9);
  EXPECT_NEAR(out[1], 0.25, 1e-9);
}

TEST(Linalg, BarycentricOffAffineHullRejected) {
  std::vector<std::vector<double>> verts = {{1, 0, 0}, {0, 1, 0}};
  std::vector<double> out;
  // This point has weight on the third corner: not in the edge's hull.
  EXPECT_FALSE(linalg::barycentric_coords(verts, {0.4, 0.3, 0.3}, out));
}

TEST(Linalg, BarycentricPointSimplex) {
  std::vector<std::vector<double>> verts = {{0.5, 0.5, 0.0}};
  std::vector<double> out;
  EXPECT_TRUE(linalg::barycentric_coords(verts, {0.5, 0.5, 0.0}, out));
  EXPECT_FALSE(linalg::barycentric_coords(verts, {0.4, 0.6, 0.0}, out));
}

TEST(Linalg, SimplexVolumeTriangle) {
  // Right triangle with legs 1,1 in R^2: area 0.5.
  std::vector<std::vector<double>> verts = {{0, 0}, {1, 0}, {0, 1}};
  EXPECT_NEAR(linalg::simplex_volume(verts), 0.5, 1e-12);
}

TEST(Linalg, SimplexVolumeEmbedded) {
  // The same unit segment measured in a 3-dimensional ambient space.
  std::vector<std::vector<double>> verts = {{0, 0, 0}, {1, 0, 0}};
  EXPECT_NEAR(linalg::simplex_volume(verts), 1.0, 1e-12);
  std::vector<std::vector<double>> diag = {{0, 0, 0}, {1, 1, 0}};
  EXPECT_NEAR(linalg::simplex_volume(diag), std::sqrt(2.0), 1e-12);
}

TEST(Linalg, SimplexVolumeDegenerate) {
  std::vector<std::vector<double>> verts = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_NEAR(linalg::simplex_volume(verts), 0.0, 1e-12);
}

TEST(Assertions, RequireThrowsInvalidArgument) {
  EXPECT_THROW(WFC_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(WFC_REQUIRE(true, "fine"));
}

TEST(Assertions, CheckThrowsLogicError) {
  EXPECT_THROW(WFC_CHECK(false, "bug"), std::logic_error);
  EXPECT_NO_THROW(WFC_CHECK(true, "fine"));
}

}  // namespace
}  // namespace wfc
