// Tests for §5: simplicial approximation (Lemma 2.1 / Theorem 5.1 in
// executable form), the SDS -> Bsd canonical map (Lemma 5.3's first step),
// and simplex agreement solved by convergence-map compilation (Cor 5.2).
#include <gtest/gtest.h>

#include "convergence/approximation.hpp"
#include "convergence/convergence.hpp"
#include "runtime/adversary.hpp"
#include "tasks/decision_protocol.hpp"
#include "topology/simplicial_map.hpp"
#include "topology/subdivision.hpp"

namespace wfc::conv {
namespace {

using topo::base_simplex;
using topo::ChromaticComplex;

// ---------------------------------------------------------------------------
// Chromatic approximation (Theorem 5.1).
// ---------------------------------------------------------------------------

TEST(ChromaticApproximation, IdentityTargetLevelOne) {
  // Target A = SDS(s^n): the identity at k = 1 satisfies the star condition.
  for (int n_plus_1 = 2; n_plus_1 <= 3; ++n_plus_1) {
    ChromaticComplex base = base_simplex(n_plus_1);
    ChromaticComplex target = topo::standard_chromatic_subdivision(base);
    ApproximationResult r = chromatic_approximation(target, base);
    ASSERT_TRUE(r.found) << "n+1=" << n_plus_1;
    EXPECT_EQ(r.level, 1);
    EXPECT_TRUE(verify_approximation(r, target, /*chromatic=*/true));
  }
}

TEST(ChromaticApproximation, DeeperTargetNeedsDeeperLevel) {
  ChromaticComplex base = base_simplex(2);
  ChromaticComplex target = topo::iterated_sds(base, 2);
  ApproximationResult r = chromatic_approximation(target, base);
  ASSERT_TRUE(r.found);
  EXPECT_GE(r.level, 2);
  EXPECT_TRUE(verify_approximation(r, target, /*chromatic=*/true));
}

TEST(ChromaticApproximation, TriangleDeepTarget) {
  ChromaticComplex base = base_simplex(3);
  ChromaticComplex target = topo::iterated_sds(base, 2);
  ApproximationResult r = chromatic_approximation(target, base);
  ASSERT_TRUE(r.found);
  EXPECT_GE(r.level, 2);
  EXPECT_TRUE(verify_approximation(r, target, /*chromatic=*/true));
  EXPECT_GT(r.star_checks, 0u);
}

TEST(ChromaticApproximation, TrivialTargetBase) {
  // Target = the base itself (every processor must output its corner).
  ChromaticComplex base = base_simplex(3);
  ApproximationResult r = chromatic_approximation(base, base);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.level, 1);
  // All vertices of a given color map to that corner.
  for (topo::VertexId v = 0; v < r.source.num_vertices(); ++v) {
    EXPECT_EQ(base.vertex(r.image[v]).color, r.source.vertex(v).color);
  }
}

TEST(ChromaticApproximation, RespectsMaxLevel) {
  ChromaticComplex base = base_simplex(2);
  ChromaticComplex target = topo::iterated_sds(base, 3);
  ApproximationOptions opts;
  opts.max_level = 1;  // too shallow for an SDS^3 target
  ApproximationResult r = chromatic_approximation(target, base, opts);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.level, -1);
}

// ---------------------------------------------------------------------------
// Barycentric approximation (Lemma 2.1).
// ---------------------------------------------------------------------------

TEST(BarycentricApproximation, EdgeIntoSds) {
  ChromaticComplex base = base_simplex(2);
  ChromaticComplex target = topo::standard_chromatic_subdivision(base);
  ApproximationResult r = barycentric_approximation(target, base);
  ASSERT_TRUE(r.found);
  // Bsd(s^1)'s midpoint has no target vertex whose star covers its star;
  // Bsd^2 refines enough (see the worked example in the module docs).
  EXPECT_EQ(r.level, 2);
  EXPECT_TRUE(verify_approximation(r, target, /*chromatic=*/false));
}

TEST(BarycentricApproximation, TriangleIntoSds) {
  // Bsd shrinks mesh by only n/(n+1) per level and its corner facets keep a
  // fixed angular spread, so the 2-dimensional case needs several levels
  // before every Bsd star fits inside an SDS star.
  ChromaticComplex base = base_simplex(3);
  ChromaticComplex target = topo::standard_chromatic_subdivision(base);
  ApproximationOptions opts;
  opts.max_level = 6;
  ApproximationResult r = barycentric_approximation(target, base, opts);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.level, 5);
  EXPECT_TRUE(verify_approximation(r, target, /*chromatic=*/false));
}

TEST(BarycentricApproximation, IntoBsdTarget) {
  ChromaticComplex base = base_simplex(2);
  ChromaticComplex target = topo::iterated_bsd(base, 2);
  ApproximationResult r = barycentric_approximation(target, base);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(verify_approximation(r, target, /*chromatic=*/false));
}

// ---------------------------------------------------------------------------
// SDS -> Bsd canonical map (Lemma 5.3, step one).
// ---------------------------------------------------------------------------

TEST(SdsToBsd, CarrierPreservingSimplicial) {
  for (int n_plus_1 = 2; n_plus_1 <= 4; ++n_plus_1) {
    ChromaticComplex base = base_simplex(n_plus_1);
    ChromaticComplex sds = topo::standard_chromatic_subdivision(base);
    ChromaticComplex bsd = topo::barycentric_subdivision(base);
    auto image = sds_to_bsd_map(sds, bsd);
    topo::SimplicialMap map(sds, bsd);
    for (topo::VertexId v = 0; v < sds.num_vertices(); ++v) {
      ASSERT_NE(image[v], topo::kNoVertex);
      map.set(v, image[v]);
    }
    EXPECT_TRUE(map.is_simplicial()) << "n+1=" << n_plus_1;
    EXPECT_TRUE(map.is_carrier_monotone()) << "n+1=" << n_plus_1;
    // Strict carrier preservation holds for this canonical map: the
    // barycenter of sigma spans exactly sigma's colors.
    EXPECT_TRUE(map.is_carrier_preserving_strict()) << "n+1=" << n_plus_1;
  }
}

TEST(SdsToBsd, CollapsesColors) {
  // The map is NOT color preserving (Bsd is dimension-colored); it may also
  // collapse dimension: (P0, {0,1}) and (P1, {0,1}) share a barycenter.
  ChromaticComplex base = base_simplex(2);
  ChromaticComplex sds = topo::standard_chromatic_subdivision(base);
  ChromaticComplex bsd = topo::barycentric_subdivision(base);
  auto image = sds_to_bsd_map(sds, bsd);
  // The two middle vertices of SDS(s^1) both map to the edge barycenter.
  std::vector<topo::VertexId> middles;
  for (topo::VertexId v = 0; v < sds.num_vertices(); ++v) {
    if (sds.vertex(v).carrier == ColorSet::full(2)) middles.push_back(v);
  }
  ASSERT_EQ(middles.size(), 2u);
  EXPECT_EQ(image[middles[0]], image[middles[1]]);
}

// ---------------------------------------------------------------------------
// Simplex agreement by convergence (Corollary 5.2, constructive direction).
// ---------------------------------------------------------------------------

TEST(ConvergenceProtocol, SolvesSimplexAgreementWithoutSearch) {
  auto target = topo::iterated_sds(base_simplex(3), 1);
  task::SimplexAgreementTask t(3, target);
  task::SolveResult r = solve_simplex_agreement_by_convergence(t);
  ASSERT_EQ(r.status, task::Solvability::kSolvable);
  EXPECT_EQ(r.level, 1);
  task::DecisionProtocol proto(t, std::move(r));
  EXPECT_EQ(proto.validate_exhaustively({0, 1, 2}), 13u);
  EXPECT_EQ(proto.validate_exhaustively(topo::make_simplex({0, 2})), 3u);
}

TEST(ConvergenceProtocol, DeepTargetAllExecutionsValid) {
  auto target = topo::iterated_sds(base_simplex(2), 3);
  task::SimplexAgreementTask t(2, target);
  ApproximationOptions opts;
  opts.max_level = 5;
  task::SolveResult r = solve_simplex_agreement_by_convergence(t, opts);
  ASSERT_EQ(r.status, task::Solvability::kSolvable);
  EXPECT_GE(r.level, 3);
  task::DecisionProtocol proto(t, std::move(r));
  proto.validate_exhaustively({0, 1});
}

TEST(ConvergenceProtocol, RunsUnderAdversariesAndThreads) {
  auto target = topo::iterated_sds(base_simplex(3), 1);
  task::SimplexAgreementTask t(3, target);
  task::SolveResult r = solve_simplex_agreement_by_convergence(t);
  ASSERT_EQ(r.status, task::Solvability::kSolvable);
  task::DecisionProtocol proto(t, std::move(r));
  rt::RandomAdversary adv(21);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(proto.run_simulated({0, 1, 2}, adv).valid);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(proto.run_threads({0, 1, 2}).valid);
  }
}

TEST(ConvergenceProtocol, ThrowsWhenLevelTooSmall) {
  auto target = topo::iterated_sds(base_simplex(2), 3);
  task::SimplexAgreementTask t(2, target);
  ApproximationOptions opts;
  opts.max_level = 1;
  EXPECT_THROW(solve_simplex_agreement_by_convergence(t, opts),
               std::runtime_error);
}

}  // namespace
}  // namespace wfc::conv
