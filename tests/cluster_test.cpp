// Tests for wfc::cluster: ring determinism / balance / minimal key
// movement, fingerprint routing stickiness through a live router, the id
// splice on pipelined out-of-order batches, hedging to the ring successor
// past a silent shard, breaker recovery after a shard restart, drain and
// remove semantics, conn-death re-dispatch (exactly-once across a shard
// kill), and the router-side control plane (info / cluster_stats /
// metrics reconciliation / trace rejection).
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/jsonl.hpp"
#include "service/query_service.hpp"

namespace wfc::cluster {
namespace {

using Fields = std::map<std::string, std::string>;
using namespace std::chrono_literals;

Fields parse(const std::string& line) { return svc::parse_flat_json(line); }

std::string field(const Fields& fields, const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

/// The router's routing key for a consensus solve -- mirrors make_key so
/// tests can predict which shard owns a query without sending it.
std::uint64_t consensus_key(int values) {
  return fnv1a64("procs=2;task=consensus;values=" + std::to_string(values) +
                 ";");
}

/// Finds a consensus `values` parameter whose fingerprint lands on
/// `target` in `ring`.  The search is tiny: each try hits a given shard
/// with probability ~1/size.
int consensus_values_owned_by(const Ring& ring, const std::string& target) {
  for (int v = 2; v < 40; ++v) {
    if (ring.pick(consensus_key(v)) == target) return v;
  }
  ADD_FAILURE() << "no consensus fingerprint landed on " << target;
  return 2;
}

svc::QueryService::Options service_options(int workers = 4) {
  svc::QueryService::Options options;
  options.workers = workers;
  return options;
}

/// One backend shard: a QueryService plus a started TCP server on an
/// ephemeral port.  Declaration order destroys the Server first.
struct Backend {
  explicit Backend(const std::string& shard_id)
      : service(service_options()) {
    net::ServerConfig config;
    config.listen = net::Endpoint{"127.0.0.1", 0};
    config.handler.server_id = shard_id;
    server = std::make_unique<net::Server>(service, std::move(config));
    server->start();
  }
  svc::QueryService service;
  std::unique_ptr<net::Server> server;
};

/// A TCP peer that accepts connections and reads nothing, answers nothing:
/// the "silent shard" for hedging and re-dispatch tests.  Destroying it
/// closes every accepted connection.
struct BlackHole {
  BlackHole() {
    listener = net::listen_tcp(net::Endpoint{"127.0.0.1", 0}, &port);
    thread = std::thread([this] {
      std::vector<net::Fd> accepted;
      while (!stop.load()) {
        pollfd p{listener.get(), POLLIN, 0};
        if (::poll(&p, 1, 20) > 0) {
          const int fd = ::accept(listener.get(), nullptr, nullptr);
          if (fd >= 0) accepted.emplace_back(fd);
        }
      }
    });
  }
  ~BlackHole() {
    stop.store(true);
    thread.join();
  }
  net::Fd listener;
  std::uint16_t port = 0;
  std::thread thread;
  std::atomic<bool> stop{false};
};

/// Router test defaults: fast reconnects and maintenance ticks so breaker
/// and hedge behavior is observable within test time.
RouterConfig fast_config() {
  RouterConfig config;
  config.reconnect_min = 10ms;
  config.reconnect_max = 100ms;
  config.connect_timeout = 500ms;
  config.tick = 5ms;
  return config;
}

/// N real backends behind a Router behind a front Server.  Members are
/// declared in dependency order so destruction unwinds front -> router ->
/// backend servers -> services.
struct TestCluster {
  explicit TestCluster(int n, RouterConfig config = fast_config(),
                       bool wait_up = true) {
    for (int i = 0; i < n; ++i) {
      const std::string id = "s" + std::to_string(i + 1);
      backends.push_back(std::make_unique<Backend>(id));
      config.shards.push_back(ShardSpec{
          id, net::Endpoint{"127.0.0.1", backends.back()->server->port()}});
    }
    router = std::make_unique<Router>(std::move(config));
    router->start();
    net::ServerConfig front_config;
    front_config.listen = net::Endpoint{"127.0.0.1", 0};
    front = std::make_unique<net::Server>(*router, front_config);
    front->start();
    if (wait_up) {
      for (int i = 0; i < n; ++i) wait_shard_up("s" + std::to_string(i + 1));
    }
  }

  void wait_shard_up(const std::string& id) {
    for (int spin = 0; spin < 500; ++spin) {
      if (router->shard_up_conns(id) > 0) return;
      std::this_thread::sleep_for(10ms);
    }
    FAIL() << "shard " << id << " never came up";
  }

  [[nodiscard]] net::Client connect(
      std::chrono::milliseconds recv_timeout = 0ms) const {
    net::ClientConfig config;
    config.server = net::Endpoint{"127.0.0.1", front->port()};
    config.recv_timeout = recv_timeout;
    return net::Client(std::move(config));
  }

  std::vector<std::unique_ptr<Backend>> backends;
  std::unique_ptr<Router> router;
  std::unique_ptr<net::Server> front;
};

// ---------------------------------------------------------------------------
// Ring.
// ---------------------------------------------------------------------------

TEST(Ring, PickIsDeterministicAndCoversMembers) {
  Ring ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::string shard = ring.pick(fnv1a64("key" + std::to_string(i)));
    EXPECT_TRUE(ring.contains(shard));
    EXPECT_EQ(shard, ring.pick(fnv1a64("key" + std::to_string(i))));
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 3u);  // every shard owns some keys
}

TEST(Ring, SuccessorIsADistinctShard) {
  Ring ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = fnv1a64("key" + std::to_string(i));
    const std::string primary = ring.pick(key);
    const std::string hedge = ring.successor(key, primary);
    EXPECT_NE(hedge, primary);
    EXPECT_TRUE(ring.contains(hedge));
  }
  Ring solo(64);
  solo.add("only");
  EXPECT_EQ(solo.successor(fnv1a64("k"), "only"), "");
}

TEST(Ring, RemovalMovesOnlyTheRemovedShardsKeys) {
  Ring ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  std::map<int, std::string> before;
  for (int i = 0; i < 1000; ++i) {
    before[i] = ring.pick(fnv1a64("key" + std::to_string(i)));
  }
  ring.remove("b");
  for (int i = 0; i < 1000; ++i) {
    const std::string now = ring.pick(fnv1a64("key" + std::to_string(i)));
    if (before[i] != "b") {
      // The consistent-hashing contract: surviving shards keep every key
      // they already owned.
      EXPECT_EQ(now, before[i]) << "key " << i << " moved needlessly";
    } else {
      EXPECT_NE(now, "b");
    }
  }
}

TEST(Ring, AcceptPredicateRoutesAroundShards) {
  Ring ring(64);
  ring.add("a");
  ring.add("b");
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t key = fnv1a64("key" + std::to_string(i));
    EXPECT_EQ(ring.pick(key, [](const std::string& s) { return s == "b"; }),
              "b");
  }
  EXPECT_EQ(ring.pick(1, [](const std::string&) { return false; }), "");
  EXPECT_EQ(Ring(8).pick(1), "");  // empty ring
}

TEST(Ring, ImbalanceStaysModestWithDefaultVnodes) {
  Ring ring(64);
  for (int n = 0; n < 4; ++n) ring.add("shard" + std::to_string(n));
  const std::uint64_t permille = ring.imbalance_permille();
  EXPECT_GE(permille, 1000u);  // max share is at least the mean
  EXPECT_LT(permille, 2200u);  // and well under pathological skew
}

// ---------------------------------------------------------------------------
// Routing through a live cluster.
// ---------------------------------------------------------------------------

TEST(ClusterRouter, RoundTripsAQueryThroughTheRing) {
  TestCluster cluster(2);
  net::Client client = cluster.connect();
  const std::string response = client.roundtrip(
      R"({"id":"q1","op":"solve","task":"consensus","procs":2,"values":2})");
  const Fields fields = parse(response);
  EXPECT_EQ(field(fields, "id"), "q1");
  EXPECT_EQ(field(fields, "status"), "ok");
  EXPECT_EQ(field(fields, "verdict"), "UNSOLVABLE");  // consensus, wait-free
}

TEST(ClusterRouter, PipelinedBatchIsExactlyOnceAcrossShards) {
  TestCluster cluster(3);
  net::Client client = cluster.connect();
  const int kBatch = 120;
  std::string batch;
  for (int i = 0; i < kBatch; ++i) {
    // Vary `values` (part of the task fingerprint) so the batch spreads
    // over the whole ring.
    batch += R"({"id":"b)" + std::to_string(i) +
             R"(","op":"solve","task":"consensus","procs":2,"values":)" +
             std::to_string(2 + (i % 10)) + "}\n";
  }
  client.send_raw(batch);
  client.shutdown_write();
  std::map<std::string, int> answered;
  while (std::optional<std::string> line = client.recv_line()) {
    const Fields fields = parse(*line);
    answered[field(fields, "id")]++;
    EXPECT_EQ(field(fields, "status"), "ok") << *line;
  }
  ASSERT_EQ(answered.size(), static_cast<std::size_t>(kBatch));
  for (const auto& [id, count] : answered) {
    EXPECT_EQ(count, 1) << id << " answered " << count << " times";
  }
  // The batch actually exercised more than one shard.
  const Router::Stats stats = cluster.router->stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kBatch));
  EXPECT_EQ(stats.responses, static_cast<std::uint64_t>(kBatch));
}

TEST(ClusterRouter, FingerprintRoutingIsSticky) {
  TestCluster cluster(3);
  net::Client client = cluster.connect();
  for (int i = 0; i < 12; ++i) {
    const std::string response = client.roundtrip(
        R"({"id":"r)" + std::to_string(i) +
        R"(","op":"solve","task":"renaming","procs":2,"names":5})");
    EXPECT_EQ(field(parse(response), "status"), "ok");
  }
  // One fingerprint, one shard: every dispatch went to the same place.
  const std::string stats_line =
      client.roundtrip(R"({"id":"cs","op":"cluster_stats"})");
  const Fields stats = parse(stats_line);
  int shards_hit = 0;
  for (int s = 1; s <= 3; ++s) {
    const std::string routed =
        field(stats, "shard_s" + std::to_string(s) + "_routed");
    if (!routed.empty() && routed != "0") ++shards_hit;
  }
  EXPECT_EQ(shards_hit, 1);
}

TEST(ClusterRouter, IdSpliceRoundTripsEscapedIds) {
  TestCluster cluster(2);
  net::Client client = cluster.connect();
  // An id that exercises the escape path both ways: quote, backslash, tab.
  const std::string response = client.roundtrip(
      "{\"id\":\"a\\\"b\\\\c\\td\",\"op\":\"solve\","
      "\"task\":\"consensus\",\"procs\":2,\"values\":2}");
  const Fields fields = parse(response);
  EXPECT_EQ(field(fields, "id"), "a\"b\\c\td");
  EXPECT_EQ(field(fields, "status"), "ok");
}

TEST(ClusterRouter, RequestsWithoutIdsAreAnsweredWithoutIds) {
  TestCluster cluster(2);
  net::Client client = cluster.connect();
  const std::string response = client.roundtrip(
      R"({"op":"solve","task":"consensus","procs":2,"values":2})");
  const Fields fields = parse(response);
  EXPECT_EQ(fields.count("id"), 0u);  // the router id never leaks out
  EXPECT_EQ(field(fields, "status"), "ok");
}

// ---------------------------------------------------------------------------
// Control plane.
// ---------------------------------------------------------------------------

TEST(ClusterRouter, ControlOpsAnswerLocally) {
  TestCluster cluster(2);
  net::Client client = cluster.connect();

  const Fields info =
      parse(client.roundtrip(R"({"id":"i","op":"info"})"));
  EXPECT_EQ(field(info, "role"), "router");
  EXPECT_EQ(field(info, "server_id"), "router");
  EXPECT_EQ(field(info, "shards"), "2");

  const Fields stats =
      parse(client.roundtrip(R"({"id":"c","op":"cluster_stats"})"));
  EXPECT_EQ(field(stats, "status"), "ok");
  EXPECT_EQ(field(stats, "shards_up"), "2");
  EXPECT_EQ(field(stats, "shard_s1_state"), "up");

  const Fields metrics =
      parse(client.roundtrip(R"({"id":"m","op":"metrics"})"));
  EXPECT_EQ(field(metrics, "reconciles"), "true");

  const Fields trace =
      parse(client.roundtrip(R"({"id":"t","op":"trace"})"));
  EXPECT_EQ(field(trace, "status"), "invalid_argument");
}

TEST(ClusterRouter, ShardInfoOpReportsShardIdentityThroughRouter) {
  TestCluster cluster(2);
  // info is answered by the ROUTER; a shard's own identity comes back when
  // asking the shard directly (the deployment sketch in docs/API.md).
  net::Client direct(net::ClientConfig{
      net::Endpoint{"127.0.0.1", cluster.backends[0]->server->port()}});
  const Fields info = parse(direct.roundtrip(R"({"id":"i","op":"info"})"));
  EXPECT_EQ(field(info, "server_id"), "s1");
  EXPECT_NE(field(info, "version"), "");
  EXPECT_EQ(field(info, "status"), "ok");
}

TEST(ClusterRouter, AddDrainRemoveViaWireOps) {
  TestCluster cluster(2);
  Backend extra("s3");
  net::Client client = cluster.connect();

  const Fields added = parse(client.roundtrip(
      R"({"id":"a","op":"cluster_add","shard":"s3","host":"127.0.0.1","port":)" +
      std::to_string(extra.server->port()) + "}"));
  EXPECT_EQ(field(added, "status"), "ok");
  EXPECT_EQ(field(added, "shards"), "3");
  cluster.wait_shard_up("s3");

  const Fields drained = parse(
      client.roundtrip(R"({"id":"d","op":"cluster_drain","shard":"s3"})"));
  EXPECT_EQ(field(drained, "status"), "ok");
  EXPECT_EQ(field(parse(client.roundtrip(
                R"({"id":"c","op":"cluster_stats"})")),
                  "shard_s3_state"),
            "draining");

  const Fields removed = parse(
      client.roundtrip(R"({"id":"r","op":"cluster_remove","shard":"s3"})"));
  EXPECT_EQ(field(removed, "status"), "ok");
  const Fields stats =
      parse(client.roundtrip(R"({"id":"c2","op":"cluster_stats"})"));
  EXPECT_EQ(stats.count("shard_s3_state"), 0u);
  EXPECT_EQ(field(stats, "shards"), "2");

  const Fields unknown = parse(
      client.roundtrip(R"({"id":"u","op":"cluster_drain","shard":"nope"})"));
  EXPECT_EQ(field(unknown, "status"), "invalid_argument");
}

TEST(ClusterRouter, AdminOpsCanBeDisabled) {
  RouterConfig config = fast_config();
  config.admin_ops = false;
  TestCluster cluster(1, std::move(config));
  net::Client client = cluster.connect();
  const Fields denied = parse(
      client.roundtrip(R"({"id":"x","op":"cluster_drain","shard":"s1"})"));
  EXPECT_EQ(field(denied, "status"), "invalid_argument");
  // Read-only cluster_stats stays available.
  EXPECT_EQ(field(parse(client.roundtrip(
                R"({"id":"c","op":"cluster_stats"})")),
                  "status"),
            "ok");
}

// ---------------------------------------------------------------------------
// Drain semantics.
// ---------------------------------------------------------------------------

TEST(ClusterRouter, DrainedShardStopsReceivingNewKeys) {
  TestCluster cluster(3);
  // Predict the owner of one fingerprint with a replica ring.
  Ring replica(64);
  replica.add("s1");
  replica.add("s2");
  replica.add("s3");
  const int values = consensus_values_owned_by(replica, "s2");
  net::Client client = cluster.connect();
  ASSERT_TRUE(cluster.router->drain_shard("s2"));
  for (int i = 0; i < 8; ++i) {
    const std::string response = client.roundtrip(
        R"({"id":"d)" + std::to_string(i) +
        R"(","op":"solve","task":"consensus","procs":2,"values":)" +
        std::to_string(values) + "}");
    EXPECT_EQ(field(parse(response), "status"), "ok");
  }
  const Fields stats =
      parse(client.roundtrip(R"({"id":"c","op":"cluster_stats"})"));
  EXPECT_EQ(field(stats, "shard_s2_state"), "draining");
  EXPECT_EQ(field(stats, "shard_s2_routed"), "0");
}

// ---------------------------------------------------------------------------
// Hedging, breaker, re-dispatch.
// ---------------------------------------------------------------------------

TEST(ClusterRouter, HedgesToSuccessorWhenDeadlineAtRisk) {
  BlackHole hole;
  RouterConfig config = fast_config();
  config.hedge_fraction = 0.1;
  config.hedge_min = 50ms;
  config.shards.push_back(ShardSpec{"bh", {"127.0.0.1", hole.port}});
  TestCluster cluster(2, std::move(config));
  cluster.wait_shard_up("bh");

  Ring replica(64);
  replica.add("s1");
  replica.add("s2");
  replica.add("bh");
  const int values = consensus_values_owned_by(replica, "bh");

  net::Client client = cluster.connect();
  const auto start = std::chrono::steady_clock::now();
  const std::string response = client.roundtrip(
      R"({"id":"h1","op":"solve","task":"consensus","procs":2,"values":)" +
      std::to_string(values) + R"(,"timeout_ms":10000})");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const Fields fields = parse(response);
  EXPECT_EQ(field(fields, "id"), "h1");
  EXPECT_EQ(field(fields, "status"), "ok");  // the successor answered
  EXPECT_LT(elapsed, 8s) << "hedge should beat the deadline comfortably";
  const Router::Stats stats = cluster.router->stats();
  EXPECT_GE(stats.hedges, 1u);
  EXPECT_GE(stats.hedge_wins, 1u);
}

TEST(ClusterRouter, SilentShardWithoutDeadlineTimesOutEventually) {
  BlackHole hole;
  RouterConfig config = fast_config();
  config.pending_timeout = 300ms;
  config.shards.push_back(ShardSpec{"bh", {"127.0.0.1", hole.port}});
  TestCluster cluster(0, std::move(config));
  cluster.wait_shard_up("bh");
  net::Client client = cluster.connect();
  const Fields fields = parse(client.roundtrip(
      R"({"id":"t1","op":"solve","task":"consensus","procs":2,"values":2})"));
  EXPECT_EQ(field(fields, "id"), "t1");
  EXPECT_EQ(field(fields, "status"), "deadline_exceeded");
}

TEST(ClusterRouter, AllShardsDownAnswersOverloadedWithRetryHint) {
  // A shard address nobody listens on: bind a port, then free it.
  std::uint16_t dead_port = 0;
  { net::Fd probe = net::listen_tcp(net::Endpoint{"127.0.0.1", 0}, &dead_port); }
  RouterConfig config = fast_config();
  config.shards.push_back(ShardSpec{"s1", {"127.0.0.1", dead_port}});
  TestCluster cluster(0, std::move(config), /*wait_up=*/false);
  net::Client client = cluster.connect();
  const Fields fields = parse(client.roundtrip(
      R"({"id":"x","op":"solve","task":"consensus","procs":2,"values":2})"));
  EXPECT_EQ(field(fields, "id"), "x");
  EXPECT_EQ(field(fields, "status"), "overloaded");
  EXPECT_NE(field(fields, "retry_after_ms"), "");
}

TEST(ClusterRouter, RetryHintIsJitteredAcrossRejections) {
  // A router with NO shards rejects every submit with "no shard
  // available"; the stamped retry_after_ms must be jittered uniformly in
  // [base/2, base*3/2], not the fixed base that would re-herd every
  // rejected client onto the same tick.
  RouterConfig config = fast_config();
  config.retry_after_ms = 100;
  TestCluster cluster(0, std::move(config), /*wait_up=*/false);
  net::Client client = cluster.connect();
  std::set<std::string> distinct;
  for (int i = 0; i < 40; ++i) {
    const Fields fields = parse(client.roundtrip(
        R"({"id":"j","op":"solve","task":"consensus","procs":2,"values":2})"));
    ASSERT_EQ(field(fields, "status"), "overloaded");
    const std::string hint = field(fields, "retry_after_ms");
    ASSERT_NE(hint, "");
    const int ms = std::stoi(hint);
    EXPECT_GE(ms, 50);
    EXPECT_LE(ms, 150);
    distinct.insert(hint);
  }
  // 40 draws over 101 values: a fixed hint would give exactly 1 distinct.
  EXPECT_GE(distinct.size(), 5u);
}

TEST(ClusterRouter, MetricsCarryHardeningCounters) {
  TestCluster cluster(2);
  net::Client client = cluster.connect();
  const Fields metrics =
      parse(client.roundtrip(R"({"id":"m","op":"metrics"})"));
  EXPECT_EQ(field(metrics, "probe_failures"), "0");
  EXPECT_EQ(field(metrics, "budget_exhausted"), "0");
  EXPECT_EQ(field(metrics, "hop_deadline_expired"), "0");
  EXPECT_EQ(field(metrics, "reconciles"), "true");
  const Fields stats =
      parse(client.roundtrip(R"({"id":"c","op":"cluster_stats"})"));
  EXPECT_EQ(field(stats, "shard_s1_probe_streak"), "0");
  EXPECT_EQ(field(stats, "shard_s1_state"), "up");
  EXPECT_EQ(cluster.router->shard_health("s1"),
            Router::ShardHealth::kUp);
}

TEST(ClusterRouter, BreakerRecoversWhenShardComesBack) {
  std::uint16_t port = 0;
  { net::Fd probe = net::listen_tcp(net::Endpoint{"127.0.0.1", 0}, &port); }
  RouterConfig config = fast_config();
  config.shards.push_back(ShardSpec{"s1", {"127.0.0.1", port}});
  TestCluster cluster(0, std::move(config), /*wait_up=*/false);
  std::this_thread::sleep_for(100ms);  // a few failed probes
  EXPECT_EQ(cluster.router->shard_up_conns("s1"), 0);

  // The shard appears on the previously dead port; the breaker's
  // background probes reconnect without any routing intervention.
  svc::QueryService service(service_options());
  net::ServerConfig sc;
  sc.listen = net::Endpoint{"127.0.0.1", port};
  net::Server server(service, std::move(sc));
  server.start();
  cluster.wait_shard_up("s1");

  net::Client client = cluster.connect();
  const Fields fields = parse(client.roundtrip(
      R"({"id":"x","op":"solve","task":"consensus","procs":2,"values":2})"));
  EXPECT_EQ(field(fields, "status"), "ok");
}

TEST(ClusterRouter, ConnDeathRedispatchesInflightToSurvivors) {
  auto hole = std::make_unique<BlackHole>();
  RouterConfig config = fast_config();
  config.shards.push_back(ShardSpec{"bh", {"127.0.0.1", hole->port}});
  TestCluster cluster(2, std::move(config));
  cluster.wait_shard_up("bh");

  Ring replica(64);
  replica.add("s1");
  replica.add("s2");
  replica.add("bh");
  const int values = consensus_values_owned_by(replica, "bh");

  // Park a pipelined batch on the silent shard, then kill it: the router
  // must re-home every inflight request and still deliver exactly once.
  net::Client client = cluster.connect(/*recv_timeout=*/5s);
  std::string batch;
  const int kBatch = 5;
  for (int i = 0; i < kBatch; ++i) {
    batch += R"({"id":"k)" + std::to_string(i) +
             R"(","op":"solve","task":"consensus","procs":2,"values":)" +
             std::to_string(values) + "}\n";
  }
  client.send_raw(batch);
  std::this_thread::sleep_for(200ms);  // let the sends land on bh
  hole.reset();                        // RST/EOF every bh connection

  std::map<std::string, int> answered;
  for (int i = 0; i < kBatch; ++i) {
    std::optional<std::string> line = client.recv_line();
    ASSERT_TRUE(line.has_value());
    const Fields fields = parse(*line);
    answered[field(fields, "id")]++;
    EXPECT_EQ(field(fields, "status"), "ok") << *line;
  }
  EXPECT_EQ(answered.size(), static_cast<std::size_t>(kBatch));
  for (const auto& [id, count] : answered) EXPECT_EQ(count, 1) << id;
  // No duplicates can follow: the next read times out instead of
  // producing a second copy of any id.
  EXPECT_THROW((void)client.recv_line(), net::TimeoutError);
  EXPECT_GE(cluster.router->stats().redispatches, 1u);
}

}  // namespace
}  // namespace wfc::cluster
