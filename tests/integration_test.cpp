// Cross-subsystem integration tests:
//   * Figure 1 run natively on the wait-free AtomicSnapshot object passes
//     the SAME history checker as the Figure 2 emulation (Prop 4.1's two
//     sides of the mirror);
//   * "hole" agreement -- simplex agreement on a punctured subdivision --
//     is UNSOLVABLE, the complement of Lemma 2.2's no-holes property;
//   * the chromatic index property: color-and-carrier-preserving simplicial
//     maps SDS^k(s^n) -> A hit every facet of A an odd number of times
//     (which is exactly why the puncture cannot be avoided);
//   * approximate agreement end-to-end: solve, then run on real threads.
#include <gtest/gtest.h>

#include <map>

#include "core/wfc.hpp"

namespace wfc {
namespace {

// ---------------------------------------------------------------------------
// Figure 1 native vs emulated.
// ---------------------------------------------------------------------------

TEST(Figure1Native, HistoriesValidOnAtomicSnapshot) {
  for (int procs : {2, 3, 4}) {
    for (int shots : {1, 2, 3}) {
      for (int trial = 0; trial < 5; ++trial) {
        emu::FullInfoClient client(shots);
        emu::EmulationResult res =
            emu::run_figure1_threads(procs, client.init(), client.on_scan());
        emu::HistoryReport rep = emu::check_history(res);
        EXPECT_TRUE(rep.ok()) << "procs=" << procs << " shots=" << shots
                              << ": " << rep.violation;
        for (const auto& log : res.ops) {
          EXPECT_EQ(log.size(), 2u * static_cast<unsigned>(shots));
        }
      }
    }
  }
}

TEST(Figure1Native, SameCheckerAcceptsBothStacks) {
  // The identical client protocol, one run natively and one emulated in the
  // IIS model, both through check_history.
  emu::FullInfoClient native_client(2);
  emu::EmulationResult native =
      emu::run_figure1_threads(3, native_client.init(),
                               native_client.on_scan());
  EXPECT_TRUE(emu::check_history(native).ok());

  emu::FullInfoClient emu_client(2);
  rt::RandomAdversary adv(5);
  emu::EmulationResult emulated = emu::run_emulation_simulated(
      3, adv, 256, emu_client.init(), emu_client.on_scan());
  EXPECT_TRUE(emu::check_history(emulated).ok());
}

TEST(Figure1Native, LogicalClockOrdersOps) {
  emu::FullInfoClient client(2);
  emu::EmulationResult res =
      emu::run_figure1_threads(2, client.init(), client.on_scan());
  // Timestamps are globally unique and per-processor increasing.
  std::map<int, int> seen;
  for (const auto& log : res.ops) {
    int prev_end = -1;
    for (const auto& op : log) {
      EXPECT_GT(op.start_round, prev_end);
      EXPECT_GT(op.end_round, op.start_round);
      prev_end = op.end_round;
      EXPECT_EQ(++seen[op.start_round], 1);
      EXPECT_EQ(++seen[op.end_round], 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Holes make agreement unsolvable.
// ---------------------------------------------------------------------------

topo::ChromaticComplex punctured_sds2() {
  // SDS^2(s^2) minus one fully-interior facet.
  topo::ChromaticComplex sds2 = topo::iterated_sds(topo::base_simplex(3), 2);
  for (std::size_t fi = 0; fi < sds2.num_facets(); ++fi) {
    const topo::Simplex& f = sds2.facets()[fi];
    bool interior = true;
    for (topo::VertexId v : f) {
      if (sds2.vertex(v).carrier != ColorSet::full(3)) interior = false;
    }
    if (interior) return topo::drop_facet(sds2, fi);
  }
  ADD_FAILURE() << "no interior facet found";
  return sds2;
}

TEST(HoleAgreement, PuncturedTargetUnsolvable) {
  // Simplex agreement on the punctured SDS^2(s^2): every candidate decision
  // map must cover the missing facet (odd-degree argument), so the search
  // refutes levels 0..2 exhaustively.  On the UNpunctured target the same
  // search succeeds at level 2 -- the hole is the only difference.
  topo::ChromaticComplex holed = punctured_sds2();
  task::SimplexAgreementTask hole_task(3, holed);
  for (int level = 0; level <= 2; ++level) {
    task::SolveResult r = task::solve_at_level(hole_task, level);
    EXPECT_EQ(r.status, task::Solvability::kUnsolvable) << "level " << level;
  }

  task::SimplexAgreementTask full_task(
      3, topo::iterated_sds(topo::base_simplex(3), 2));
  EXPECT_EQ(task::solve_at_level(full_task, 2).status,
            task::Solvability::kSolvable);
}

TEST(HoleAgreement, PuncturedEdgeStillSolvable) {
  // In dimension 1 dropping an interior edge DISCONNECTS the target, which
  // also kills solvability -- but dropping nothing keeps it solvable; this
  // pins the contrast to the structure, not the task plumbing.
  topo::ChromaticComplex sds2 = topo::iterated_sds(topo::base_simplex(2), 2);
  task::SimplexAgreementTask ok_task(2, sds2);
  EXPECT_EQ(task::solve(ok_task, 2).status, task::Solvability::kSolvable);

  // Find an interior edge (both endpoints with full carrier).
  for (std::size_t fi = 0; fi < sds2.num_facets(); ++fi) {
    const topo::Simplex& f = sds2.facets()[fi];
    bool interior = true;
    for (topo::VertexId v : f) {
      if (sds2.vertex(v).carrier != ColorSet::full(2)) interior = false;
    }
    if (!interior) continue;
    task::SimplexAgreementTask cut_task(2, topo::drop_facet(sds2, fi));
    EXPECT_EQ(task::solve(cut_task, 3).status, task::Solvability::kUnsolvable);
    return;
  }
  FAIL() << "no interior edge found";
}

// ---------------------------------------------------------------------------
// Chromatic index: preimage parity of facets under chromatic maps.
// ---------------------------------------------------------------------------

TEST(ChromaticIndex, EveryTargetFacetHasOddPreimageCount) {
  // For the approximation maps SDS^k -> A found by §5 machinery, count the
  // source facets mapping ONTO each target facet: always odd.  This is the
  // degree-theoretic reason agreement cannot dodge a punctured facet.
  for (int n_plus_1 : {2, 3}) {
    topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
    topo::ChromaticComplex target = topo::iterated_sds(base, 1);
    conv::ApproximationOptions opts;
    opts.max_level = 3;
    conv::ApproximationResult r =
        conv::chromatic_approximation(target, base, opts);
    ASSERT_TRUE(r.found);

    std::map<topo::Simplex, std::uint64_t> preimages;
    for (const topo::Simplex& f : r.source.facets()) {
      topo::Simplex img;
      for (topo::VertexId v : f) img.push_back(r.image[v]);
      img = topo::make_simplex(std::move(img));
      if (img.size() == f.size()) ++preimages[img];  // onto (non-collapsed)
    }
    for (const topo::Simplex& tf : target.facets()) {
      const std::uint64_t count = preimages[tf];
      EXPECT_EQ(count % 2, 1u)
          << "n+1=" << n_plus_1 << " facet " << topo::to_string(tf)
          << " count " << count;
    }
  }
}

// ---------------------------------------------------------------------------
// Approximate agreement end-to-end.
// ---------------------------------------------------------------------------

TEST(ApproxAgreementEndToEnd, SolveThenRunOnThreads) {
  task::ApproxAgreementTask t(2, 9);  // needs b = 2
  task::SolveResult r = task::solve(t, 2);
  ASSERT_EQ(r.status, task::Solvability::kSolvable);
  ASSERT_EQ(r.level, 2);
  task::DecisionProtocol proto(t, std::move(r));
  // Mixed-input facet: P0 starts at 0, P1 starts at 9.
  topo::VertexId i0 = t.input().find_vertex("P0=0");
  topo::VertexId i1 = t.input().find_vertex("P1=9");
  ASSERT_NE(i0, topo::kNoVertex);
  ASSERT_NE(i1, topo::kNoVertex);
  const topo::Simplex facet = topo::make_simplex({i0, i1});
  EXPECT_EQ(proto.validate_exhaustively(facet), 9u);
  for (int trial = 0; trial < 10; ++trial) {
    task::RunOutcome out = proto.run_threads(facet);
    EXPECT_TRUE(out.valid);
    // Decisions within 1 of each other.
    const int a = t.output_value(out.decisions[0]);
    const int b = t.output_value(out.decisions[1]);
    EXPECT_LE(std::abs(a - b), 1);
  }
}

TEST(ApproxAgreementEndToEnd, EqualInputsDecideImmediately) {
  // Both start at 0: validity pins every decision to 0 regardless of level.
  task::ApproxAgreementTask t(2, 3);
  task::SolveResult r = task::solve(t, 1);
  ASSERT_EQ(r.status, task::Solvability::kSolvable);
  task::DecisionProtocol proto(t, std::move(r));
  topo::VertexId i0 = t.input().find_vertex("P0=0");
  topo::VertexId i1 = t.input().find_vertex("P1=0");
  rt::SynchronousAdversary adv;
  task::RunOutcome out =
      proto.run_simulated(topo::make_simplex({i0, i1}), adv);
  ASSERT_TRUE(out.valid);
  EXPECT_EQ(t.output_value(out.decisions[0]), 0);
  EXPECT_EQ(t.output_value(out.decisions[1]), 0);
}

}  // namespace
}  // namespace wfc
