// Tests for the §4 emulation (Figure 2): tuple-set algebra, the emulator
// state machine, history validity under many adversaries and on real
// threads, the starvation behaviour the paper warns about (nonblocking, not
// wait-free), and the history checker's own error detection.
#include <gtest/gtest.h>

#include <set>

#include "emulation/emulator.hpp"
#include "emulation/history.hpp"
#include "runtime/sim_snapshot.hpp"

namespace wfc::emu {
namespace {

// ---------------------------------------------------------------------------
// TupleSet.
// ---------------------------------------------------------------------------

TEST(TupleSet, BasicAlgebra) {
  Tuple a{0, 1, false, 42};
  Tuple b{1, 1, false, 43};
  Tuple c{0, 1, true, 0};
  TupleSet s({a, b});
  EXPECT_TRUE(s.contains(a));
  EXPECT_FALSE(s.contains(c));
  EXPECT_EQ(s.size(), 2u);

  TupleSet t({b, c});
  EXPECT_EQ(s.unite(t).size(), 3u);
  EXPECT_EQ(s.intersect(t).size(), 1u);
  EXPECT_TRUE(s.intersect(t).contains(b));
  EXPECT_TRUE(TupleSet({b}).subset_of(s));
  EXPECT_FALSE(s.subset_of(t));
}

TEST(TupleSet, WithIsIdempotent) {
  Tuple a{2, 3, false, 7};
  TupleSet s;
  s = s.with(a).with(a);
  EXPECT_EQ(s.size(), 1u);
}

TEST(TupleSet, DuplicatesNormalized) {
  Tuple a{0, 1, false, 5};
  TupleSet s({a, a, a});
  EXPECT_EQ(s.size(), 1u);
}

TEST(TupleSet, PlaceholderDistinctFromValue) {
  Tuple w{0, 1, false, 0};
  Tuple ph{0, 1, true, 0};
  TupleSet s({w});
  EXPECT_FALSE(s.contains(ph));
  EXPECT_EQ(s.with(ph).size(), 2u);
}

TEST(TupleSet, UnionIntersectionHelpers) {
  std::vector<TupleSet> sets = {
      TupleSet({Tuple{0, 1, false, 1}, Tuple{1, 1, false, 2}}),
      TupleSet({Tuple{0, 1, false, 1}}),
  };
  EXPECT_EQ(union_of(sets.begin(), sets.end()).size(), 2u);
  EXPECT_EQ(intersection_of(sets.begin(), sets.end()).size(), 1u);
}

// ---------------------------------------------------------------------------
// Emulation runs: validity under every adversary style.
// ---------------------------------------------------------------------------

int generous_rounds(int n, int k) { return 64 + 16 * n * k; }

TEST(Emulation, SynchronousHistoryValid) {
  for (int n = 2; n <= 4; ++n) {
    for (int k = 1; k <= 3; ++k) {
      FullInfoClient client(k);
      rt::SynchronousAdversary adv;
      EmulationResult res = run_emulation_simulated(
          n, adv, generous_rounds(n, k), client.init(), client.on_scan());
      HistoryReport rep = check_history(res);
      EXPECT_TRUE(rep.ok()) << "n=" << n << " k=" << k << ": " << rep.violation;
      // Every processor completed 2k operations.
      for (const auto& log : res.ops) EXPECT_EQ(log.size(), 2u * k);
    }
  }
}

TEST(Emulation, SequentialHistoryValid) {
  for (int n = 2; n <= 3; ++n) {
    FullInfoClient client(2);
    rt::SequentialAdversary adv;
    EmulationResult res = run_emulation_simulated(
        n, adv, generous_rounds(n, 2), client.init(), client.on_scan());
    HistoryReport rep = check_history(res);
    EXPECT_TRUE(rep.ok()) << rep.violation;
  }
}

TEST(Emulation, RotatingHistoryValid) {
  FullInfoClient client(2);
  rt::RotatingAdversary adv;
  EmulationResult res = run_emulation_simulated(
      3, adv, generous_rounds(3, 2), client.init(), client.on_scan());
  EXPECT_TRUE(check_history(res).ok());
}

TEST(Emulation, RandomHistoriesValid) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    FullInfoClient client(2);
    rt::RandomAdversary adv(seed);
    EmulationResult res = run_emulation_simulated(
        3, adv, generous_rounds(3, 2), client.init(), client.on_scan());
    HistoryReport rep = check_history(res);
    EXPECT_TRUE(rep.ok()) << "seed=" << seed << ": " << rep.violation;
  }
}

TEST(Emulation, RealThreadHistoriesValid) {
  for (int trial = 0; trial < 20; ++trial) {
    FullInfoClient client(2);
    EmulationResult res = run_emulation_threads(
        3, generous_rounds(3, 2), client.init(), client.on_scan());
    HistoryReport rep = check_history(res);
    EXPECT_TRUE(rep.ok()) << "trial " << trial << ": " << rep.violation;
  }
}

TEST(Emulation, SoloProcessor) {
  FullInfoClient client(3);
  rt::SynchronousAdversary adv;
  EmulationResult res =
      run_emulation_simulated(1, adv, 32, client.init(), client.on_scan());
  EXPECT_TRUE(check_history(res).ok());
  EXPECT_EQ(res.ops[0].size(), 6u);
  // Solo: every round completes an operation -- 2 ops per... the write
  // completes in one memory, the read in the next.
  EXPECT_LE(res.rounds_used, 7);
}

// The paper's closing §4 remark, demonstrated: under the sequential
// adversary the fastest processor steams ahead while slower ones retry;
// once it halts (k-shot boundedness, Lemma 3.1), the others progress.
TEST(Emulation, FastProcessorDelaysSlowOnes) {
  FullInfoClient client(1);
  rt::SequentialAdversary adv;
  EmulationResult res =
      run_emulation_simulated(2, adv, 64, client.init(), client.on_scan());
  ASSERT_TRUE(check_history(res).ok());
  const auto& p0 = res.ops[0];
  const auto& p1 = res.ops[1];
  ASSERT_EQ(p0.size(), 2u);
  ASSERT_EQ(p1.size(), 2u);
  // P0 (always scheduled first, sees only itself) finishes before P1
  // completes anything.
  EXPECT_LT(p0.back().end_round, p1.front().end_round);
  // P1 burned extra IIS rounds retrying.
  EXPECT_GT(res.iis_steps[1], res.iis_steps[0]);
}

TEST(Emulation, ThrowsWhenStarvedPastCap) {
  // With max_rounds too small for the sequential schedule, the run aborts
  // with the "still running" logic error rather than mis-reporting.
  FullInfoClient client(3);
  rt::SequentialAdversary adv;
  EXPECT_THROW(run_emulation_simulated(3, adv, 4, client.init(),
                                       client.on_scan()),
               std::logic_error);
}

// Emulated full-information views must match what the DIRECT atomic
// snapshot model produces for some schedule: compare against the direct
// simulation on a fair schedule under the synchronous adversary.
TEST(Emulation, SynchronousMatchesDirectFairSchedule) {
  constexpr int kProcs = 3;
  // Direct model: everyone writes, then everyone scans, twice.
  std::vector<std::vector<std::optional<int>>> direct_first(kProcs);
  std::function<int(int)> init = [](int p) { return p; };
  std::function<rt::Step<int>(int, int, const rt::MemoryView<int>&)> on_scan =
      [&](int p, int k, const rt::MemoryView<int>& view) {
        if (k == 1) {
          direct_first[static_cast<std::size_t>(p)] = view;
          return rt::Step<int>::halt();
        }
        return rt::Step<int>::cont(0);
      };
  rt::run_snapshot_model<int>(kProcs, rt::fair_schedule(kProcs, 2), init,
                              on_scan);

  FullInfoClient client(1);
  rt::SynchronousAdversary adv;
  EmulationResult res = run_emulation_simulated(kProcs, adv, 32, client.init(),
                                                client.on_scan());
  ASSERT_TRUE(check_history(res).ok());
  // Under the synchronous adversary every emulated first scan sees all
  // first-round writes -- the same full view as the direct fair schedule.
  for (int p = 0; p < kProcs; ++p) {
    const EmulatedOp& snap = res.ops[static_cast<std::size_t>(p)][1];
    ASSERT_FALSE(snap.is_write);
    for (int q = 0; q < kProcs; ++q) {
      ASSERT_TRUE(snap.view[static_cast<std::size_t>(q)].has_value());
      EXPECT_EQ(snap.view[static_cast<std::size_t>(q)]->second,
                *direct_first[static_cast<std::size_t>(p)]
                             [static_cast<std::size_t>(q)]);
    }
  }
}

TEST(Emulation, LateVictimStarvesUntilOthersHalt) {
  // The LateAdversary keeps processor 2 in the last block of every round:
  // it sees everyone's sets but nobody adopts its tuples until the others
  // halt, so it completes nothing before they do.
  FullInfoClient client(1);
  rt::LateAdversary adv(2);
  EmulationResult res = run_emulation_simulated(3, adv, 96, client.init(),
                                                client.on_scan());
  ASSERT_TRUE(check_history(res).ok());
  const int victim_first_done = res.ops[2].front().end_round;
  for (int p = 0; p < 2; ++p) {
    EXPECT_LT(res.ops[static_cast<std::size_t>(p)].back().end_round,
              victim_first_done);
  }
}

// A second, non-full-information client: running maximum.  Each processor
// writes its input, then k times scans and writes the max value it saw.
// The emulation must serve any deterministic client, not just full-info.
TEST(Emulation, MaxRegisterClientConverges) {
  constexpr int kProcs = 4;
  constexpr int kShots = 3;
  std::function<int(int)> init = [](int p) { return 10 * (p + 1); };
  auto on_scan = [](int, int k, const rt::MemoryView<int>& view) {
    int best = 0;
    for (const auto& cell : view) {
      if (cell.has_value()) best = std::max(best, *cell);
    }
    if (k >= kShots) return rt::Step<int>::halt();
    return rt::Step<int>::cont(best);
  };
  rt::SynchronousAdversary adv;
  EmulationResult res = run_emulation_simulated(
      kProcs, adv, 128, init, EmulatorCore::OnScan(on_scan));
  ASSERT_TRUE(check_history(res).ok());
  // Under the synchronous schedule everyone saw everyone's first write, so
  // by the second write every cell carries the global max.
  for (const auto& log : res.ops) {
    const EmulatedOp& last_snap = log.back();
    ASSERT_FALSE(last_snap.is_write);
    for (const auto& cell : last_snap.view) {
      ASSERT_TRUE(cell.has_value());
      EXPECT_EQ(cell->second, 10 * kProcs);
    }
  }
}

// ---------------------------------------------------------------------------
// History checker error detection.
// ---------------------------------------------------------------------------

EmulationResult valid_run() {
  FullInfoClient client(2);
  rt::SynchronousAdversary adv;
  return run_emulation_simulated(3, adv, 96, client.init(), client.on_scan());
}

TEST(HistoryChecker, DetectsGhostValue) {
  EmulationResult res = valid_run();
  // Corrupt a snapshot to claim a value nobody wrote.
  for (auto& log : res.ops) {
    for (auto& op : log) {
      if (!op.is_write && op.view[0].has_value()) {
        op.view[0]->second += 999;
        HistoryReport rep = check_history(res);
        EXPECT_FALSE(rep.values_faithful);
        EXPECT_FALSE(rep.ok());
        return;
      }
    }
  }
  FAIL() << "no snapshot found to corrupt";
}

TEST(HistoryChecker, DetectsMissingSelfInclusion) {
  EmulationResult res = valid_run();
  for (auto& op : res.ops[1]) {
    if (!op.is_write) {
      op.view[1].reset();
      break;
    }
  }
  HistoryReport rep = check_history(res);
  EXPECT_FALSE(rep.self_inclusion);
}

TEST(HistoryChecker, DetectsStaleRead) {
  EmulationResult res = valid_run();
  // Find a second snapshot and roll back its view of another processor that
  // wrote twice before it started.
  for (auto& op : res.ops[0]) {
    if (!op.is_write && op.seq == 2 && op.view[1].has_value() &&
        op.view[1]->first >= 2) {
      op.view[1] = std::make_pair(0, 0);
      break;
    }
  }
  HistoryReport rep = check_history(res);
  EXPECT_FALSE(rep.ok());
}

TEST(HistoryChecker, DetectsIncomparableViews) {
  EmulationResult res = valid_run();
  // Hand-craft two incomparable views on distinct processors.
  EmulatedOp* snap0 = nullptr;
  EmulatedOp* snap1 = nullptr;
  for (auto& op : res.ops[0]) {
    if (!op.is_write) snap0 = &op;
  }
  for (auto& op : res.ops[1]) {
    if (!op.is_write) snap1 = &op;
  }
  ASSERT_NE(snap0, nullptr);
  ASSERT_NE(snap1, nullptr);
  snap0->view[2] = std::make_pair(99, 0);   // ahead on cell 2
  snap1->view[2] = std::make_pair(1, 0);
  snap0->view[1] = std::make_pair(1, 0);    // behind on cell 1
  snap1->view[1] = std::make_pair(99, 0);
  HistoryReport rep = check_history(res);
  EXPECT_FALSE(rep.views_totally_ordered);
}

TEST(HistoryChecker, DetectsMalformedLog) {
  EmulationResult res = valid_run();
  // Duplicate an op: breaks alternation.
  res.ops[0].push_back(res.ops[0].back());
  HistoryReport rep = check_history(res);
  EXPECT_FALSE(rep.well_formed);
}

TEST(HistoryChecker, AcceptsValidRuns) {
  HistoryReport rep = check_history(valid_run());
  EXPECT_TRUE(rep.ok()) << rep.violation;
  EXPECT_TRUE(rep.violation.empty());
}

}  // namespace
}  // namespace wfc::emu
