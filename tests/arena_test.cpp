// topo::Arena -- the data-oriented SoA core behind the PR-9 solver and the
// persistent chain store.  Three contracts are pinned here:
//
//   1. Round-trip fidelity: Arena::build(K).materialize() reproduces K up
//      to canonical fingerprint (same vertices/colors/carriers/facets in
//      the same order), and view(bytes) over a materialized blob is
//      byte-identical to the builder's output.
//   2. Blob validation: view() rejects truncation, bad magic, version
//      skew, and corrupted CSR tables with std::invalid_argument instead
//      of serving out-of-bounds spans.
//   3. Engine equivalence: the arena search explores the IDENTICAL tree as
//      the legacy ChromaticComplex search -- same verdicts, same decision
//      maps, same nodes_explored, level by level, across the canonical
//      task families.  (Same discipline as chain_reuse_test: any
//      divergence in the exact node count means the rewrite changed the
//      search, not just its memory layout.)
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "topology/arena.hpp"
#include "topology/complex.hpp"
#include "topology/hash.hpp"
#include "topology/subdivision.hpp"

namespace wfc::topo {
namespace {

ChromaticComplex sds_tower(int procs, int depth) {
  ChromaticComplex k = base_simplex(procs);
  for (int r = 0; r < depth; ++r) k = standard_chromatic_subdivision(k);
  return k;
}

TEST(Arena, RoundTripPreservesFingerprint) {
  for (int procs = 1; procs <= 3; ++procs) {
    for (int depth = 0; depth <= 2; ++depth) {
      if (procs == 3 && depth > 1) continue;  // keep the suite fast
      SCOPED_TRACE("procs=" + std::to_string(procs) +
                   " depth=" + std::to_string(depth));
      const ChromaticComplex k = sds_tower(procs, depth);
      const Arena a = Arena::build(k);
      ASSERT_TRUE(a.valid());
      EXPECT_EQ(a.num_vertices(), k.num_vertices());
      EXPECT_EQ(a.num_facets(), k.facets().size());
      const ChromaticComplex back = a.materialize();
      EXPECT_EQ(complex_fingerprint(back), complex_fingerprint(k));
    }
  }
}

TEST(Arena, PerVertexDataMatchesComplex) {
  const ChromaticComplex k = sds_tower(2, 2);
  const Arena a = Arena::build(k);
  for (VertexId v = 0; v < k.num_vertices(); ++v) {
    const VertexData& data = k.vertex(v);
    EXPECT_EQ(a.colors()[v], static_cast<std::uint8_t>(data.color));
    EXPECT_EQ(a.carrier_masks()[v], data.carrier.mask());
    EXPECT_EQ(a.key(v), data.key);
    const auto bc = a.base_carrier(v);
    ASSERT_EQ(bc.size(), data.base_carrier.size());
    for (std::size_t i = 0; i < bc.size(); ++i) {
      EXPECT_EQ(bc[i], data.base_carrier[i]);
    }
  }
  ASSERT_EQ(a.num_facets(), k.facets().size());
  for (std::uint32_t f = 0; f < a.num_facets(); ++f) {
    const auto fa = a.facet(f);
    const Simplex& fk = k.facets()[f];
    ASSERT_EQ(fa.size(), fk.size());
    for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fk[i]);
  }
}

TEST(Arena, ViewOverMaterializedBlobIsIdentical) {
  const ChromaticComplex k = sds_tower(2, 1);
  const Arena a = Arena::build(k);
  const auto bytes = a.bytes();
  auto copy = std::make_shared<std::vector<std::byte>>(bytes.begin(),
                                                       bytes.end());
  const Arena v = Arena::view({copy->data(), copy->size()}, copy);
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.num_vertices(), a.num_vertices());
  EXPECT_EQ(complex_fingerprint(v.materialize()), complex_fingerprint(k));
}

TEST(Arena, ViewRejectsMalformedBlobs) {
  const ChromaticComplex k = sds_tower(2, 1);
  const Arena a = Arena::build(k);
  const auto bytes = a.bytes();
  auto blob = std::make_shared<std::vector<std::byte>>(bytes.begin(),
                                                       bytes.end());

  // Truncation: every prefix strictly shorter than the blob must throw.
  for (std::size_t cut : {std::size_t{0}, std::size_t{8},
                          blob->size() / 2, blob->size() - 1}) {
    EXPECT_THROW(Arena::view({blob->data(), cut}, blob),
                 std::invalid_argument)
        << "cut=" << cut;
  }

  // Bad magic.
  {
    auto bad = std::make_shared<std::vector<std::byte>>(*blob);
    (*bad)[0] = std::byte{0xff};
    EXPECT_THROW(Arena::view({bad->data(), bad->size()}, bad),
                 std::invalid_argument);
  }
  // Version skew.
  {
    auto bad = std::make_shared<std::vector<std::byte>>(*blob);
    const std::uint32_t future = kArenaVersion + 1;
    std::memcpy(bad->data() + sizeof(std::uint32_t), &future,
                sizeof(future));
    EXPECT_THROW(Arena::view({bad->data(), bad->size()}, bad),
                 std::invalid_argument);
  }
  // Corrupted header counts (vertex count inflated past every table).
  {
    auto bad = std::make_shared<std::vector<std::byte>>(*blob);
    ArenaHeader h;
    std::memcpy(&h, bad->data(), sizeof(h));
    h.n_vertices *= 1000;
    std::memcpy(bad->data(), &h, sizeof(h));
    EXPECT_THROW(Arena::view({bad->data(), bad->size()}, bad),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace wfc::topo

namespace wfc::task {
namespace {

struct Case {
  std::shared_ptr<Task> task;
  int max_level;
};

std::vector<Case> canonical_cases() {
  std::vector<Case> cases;
  cases.push_back({std::make_shared<ConsensusTask>(2, 2), 2});
  cases.push_back({std::make_shared<KSetConsensusTask>(3, 2), 1});
  cases.push_back({std::make_shared<RenamingTask>(2, 2), 2});
  cases.push_back({std::make_shared<ApproxAgreementTask>(2, 3), 2});
  cases.push_back({std::make_shared<ApproxAgreementTask>(2, 9), 2});
  cases.push_back({std::make_shared<IdentityTask>(topo::base_simplex(3)), 1});
  return cases;
}

TEST(ArenaSearch, MatchesLegacyEngineExactly) {
  for (const Case& c : canonical_cases()) {
    SCOPED_TRACE(c.task->name());
    for (int level = 0; level <= c.max_level; ++level) {
      SCOPED_TRACE("level=" + std::to_string(level));
      SolveOptions arena_opts;
      arena_opts.engine = SolveEngine::kArena;
      SolveOptions legacy_opts;
      legacy_opts.engine = SolveEngine::kLegacy;
      const SolveResult a = solve_at_level(*c.task, level, arena_opts);
      const SolveResult l = solve_at_level(*c.task, level, legacy_opts);
      EXPECT_EQ(a.status, l.status);
      EXPECT_EQ(a.level, l.level);
      EXPECT_EQ(a.nodes_explored, l.nodes_explored)
          << "engines explored different trees";
      EXPECT_EQ(a.decision, l.decision);
    }
  }
}

TEST(ArenaSearch, MatchesLegacyUnderBudgetExhaustion) {
  // A budget small enough to cut both searches off mid-tree: the kUnknown
  // verdict AND the exact node count at which it triggers must agree.
  ConsensusTask task(2, 2);
  for (const std::uint64_t budget : {1ull, 7ull, 50ull}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    SolveOptions arena_opts;
    arena_opts.engine = SolveEngine::kArena;
    arena_opts.node_budget = budget;
    SolveOptions legacy_opts;
    legacy_opts.engine = SolveEngine::kLegacy;
    legacy_opts.node_budget = budget;
    const SolveResult a = solve(task, 2, arena_opts);
    const SolveResult l = solve(task, 2, legacy_opts);
    EXPECT_EQ(a.status, l.status);
    EXPECT_EQ(a.nodes_explored, l.nodes_explored);
  }
}

}  // namespace
}  // namespace wfc::task
