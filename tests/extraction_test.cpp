// Decision-map extraction: hand-written protocols proven correct by
// replaying every schedule and checking the induced map against Prop 3.1.
#include <gtest/gtest.h>

#include "core/wfc.hpp"
#include "tasks/extraction.hpp"

namespace wfc::task {
namespace {

// ---------------------------------------------------------------------------
// A hand-written approximate agreement protocol (2 processors, grid 3^b):
// carry your value; whenever you see the other processor, jump 2/3 of the
// way toward its value.  The gap is 3^b initially and divides by 3 each
// round, so after b rounds adjacent grid points remain.
// ---------------------------------------------------------------------------

ExtractionProtocol two_thirds_protocol(const ApproxAgreementTask& task) {
  ExtractionProtocol p;
  p.init = [&task](Color, topo::VertexId v) { return task.input_value(v); };
  p.step = [](Color c, int, const rt::IisSnapshot<int>& snap) {
    int own = 0, other = 0;
    bool saw_other = false;
    for (const auto& [color, value] : snap) {
      if (color == c) {
        own = value;
      } else {
        other = value;
        saw_other = true;
      }
    }
    if (!saw_other) return own;
    return own + 2 * (other - own) / 3;
  };
  p.decide = [&task](Color c, int state) {
    const topo::VertexId v = task.output().find_vertex(
        "P" + std::to_string(c) + "~" + std::to_string(state));
    WFC_CHECK(v != topo::kNoVertex, "two_thirds: state off the grid");
    return v;
  };
  return p;
}

TEST(Extraction, TwoThirdsProtocolSolvesApproxAgreement) {
  for (int b = 1; b <= 3; ++b) {
    int grid = 1;
    for (int i = 0; i < b; ++i) grid *= 3;
    ApproxAgreementTask task(2, grid);
    ExtractionReport rep =
        extract_decision_map(task, b, two_thirds_protocol(task));
    EXPECT_TRUE(rep.ok()) << "b=" << b << ": " << rep.violation;
  }
}

TEST(Extraction, ExtractedWitnessRunsLikeASearchedOne) {
  ApproxAgreementTask task(2, 9);
  ExtractionReport rep =
      extract_decision_map(task, 2, two_thirds_protocol(task));
  ASSERT_TRUE(rep.ok()) << rep.violation;
  DecisionProtocol protocol(task, std::move(rep.result));
  topo::VertexId i0 = task.input().find_vertex("P0=0");
  topo::VertexId i1 = task.input().find_vertex("P1=9");
  EXPECT_EQ(protocol.validate_exhaustively(topo::make_simplex({i0, i1})), 9u);
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(protocol.run_threads(topo::make_simplex({i0, i1})).valid);
  }
}

TEST(Extraction, UnderSubdividedProtocolRejected) {
  // The same rule with ONE round on grid 9 leaves a gap of 3: the extracted
  // map must fail Delta (outputs farther than 1 apart).
  ApproxAgreementTask task(2, 9);
  ExtractionReport rep =
      extract_decision_map(task, 1, two_thirds_protocol(task));
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(rep.violation.empty());
}

// ---------------------------------------------------------------------------
// A deliberately broken protocol: color-flipping decisions are caught.
// ---------------------------------------------------------------------------

TEST(Extraction, ColorViolationDetected) {
  ApproxAgreementTask task(2, 3);
  ExtractionProtocol p = two_thirds_protocol(task);
  p.decide = [&task](Color c, int state) {
    // Decide the OTHER processor's vertex: breaks color preservation.
    return task.output().find_vertex("P" + std::to_string(1 - c) + "~" +
                                     std::to_string(state));
  };
  ExtractionReport rep = extract_decision_map(task, 1, p);
  EXPECT_FALSE(rep.color_preserving);
  EXPECT_FALSE(rep.ok());
}

TEST(Extraction, ValidityViolationDetected) {
  // Constant-0 deciders violate range validity on the (9,9) input edge.
  ApproxAgreementTask task(2, 3);
  ExtractionProtocol p = two_thirds_protocol(task);
  p.decide = [&task](Color c, int) {
    return task.output().find_vertex("P" + std::to_string(c) + "~0");
  };
  ExtractionReport rep = extract_decision_map(task, 1, p);
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(rep.delta_respecting);
}

// ---------------------------------------------------------------------------
// The identity protocol for simplex agreement: decide your own SDS vertex.
// ---------------------------------------------------------------------------

TEST(Extraction, IdentityProtocolSolvesSimplexAgreement) {
  // Protocol state = current vertex id in the chain; on each round, locate
  // yourself; decide the vertex you ended on.  The target IS SDS^b(s^n), so
  // the decision map is the identity -- the cleanest witness there is.
  const int b = 2;
  auto target = topo::iterated_sds(topo::base_simplex(2), b);
  SimplexAgreementTask task(2, target);
  proto::SdsChain chain(task.input(), b);

  ExtractionProtocol p;
  p.init = [](Color, topo::VertexId v) { return static_cast<int>(v); };
  p.step = [&chain](Color c, int round, const rt::IisSnapshot<int>& snap) {
    topo::Simplex seen;
    for (const auto& [color, vid] : snap) {
      seen.push_back(static_cast<topo::VertexId>(vid));
    }
    return static_cast<int>(
        chain.locate(round + 1, c, topo::make_simplex(std::move(seen))));
  };
  p.decide = [&task, &chain, b](Color, int state) {
    // Chain top and task output are the same construction; keys match.
    const std::string& key =
        chain.top().vertex(static_cast<topo::VertexId>(state)).key;
    const topo::VertexId w = task.output().find_vertex(key);
    WFC_CHECK(w != topo::kNoVertex, "identity: key mismatch");
    return w;
  };
  ExtractionReport rep = extract_decision_map(task, b, p);
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

}  // namespace
}  // namespace wfc::task
