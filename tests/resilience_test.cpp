// t-resilient solvability via the BG reduction (colorless tasks).
#include <gtest/gtest.h>

#include "tasks/resilience.hpp"

namespace wfc::task {
namespace {

TEST(Colorless, ProjectedConsensusMatchesDirectConstruction) {
  ProjectedColorlessTask proj(colorless_consensus(2), 2);
  // Same shape as ConsensusTask(2, 2): 4 input edges, 2 output edges.
  EXPECT_EQ(proj.input().num_facets(), 4u);
  EXPECT_EQ(proj.output().num_facets(), 2u);
  // And the same verdict.
  EXPECT_EQ(solve(proj, 2).status, Solvability::kUnsolvable);
}

TEST(Colorless, SpecValidation) {
  ColorlessSpec empty;
  EXPECT_THROW(ProjectedColorlessTask(empty, 2), std::invalid_argument);
  EXPECT_THROW(decide_t_resilient(colorless_consensus(2), 3, 3, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The classical resilience frontier, machine-derived.
// ---------------------------------------------------------------------------

TEST(Resilience, ConsensusImpossibleWithOneFailure) {
  // FLP for shared memory, derived: 1-resilient consensus among n
  // processors reduces to wait-free 2-processor consensus -- refuted.
  for (int n : {2, 3, 5}) {
    ResilienceVerdict v = decide_t_resilient(colorless_consensus(2), n, 1, 3);
    EXPECT_EQ(v.status, Solvability::kUnsolvable) << "n=" << n;
  }
}

TEST(Resilience, ConsensusSolvableWithZeroFailures) {
  // t = 0: the projection is a 1-processor task -- trivially solvable
  // (decide your own input).
  ResilienceVerdict v = decide_t_resilient(colorless_consensus(2), 3, 0, 1);
  EXPECT_EQ(v.status, Solvability::kSolvable);
  EXPECT_EQ(v.wait_free_level, 0);
}

TEST(Resilience, SetConsensusFrontier) {
  // (k)-set consensus among n processors tolerating t failures is solvable
  // iff k >= t+1 (Chaudhuri's conjecture, [5,6,7]).  The reduction turns
  // each instance into a (t+1)-processor wait-free question:
  //   k >= t+1  -> trivially solvable at level 0;
  //   k <  t+1  -> the wait-free impossibility our checker refutes.
  // 2-set consensus, 1 failure: solvable.
  EXPECT_EQ(decide_t_resilient(colorless_set_consensus(2, 3), 3, 1, 1).status,
            Solvability::kSolvable);
  // 2-set consensus, 2 failures: unsolvable (k = 2 < t+1 = 3) -- refuted
  // per level by search.
  EXPECT_EQ(decide_t_resilient(colorless_set_consensus(2, 3), 3, 2, 1).status,
            Solvability::kUnsolvable);
  // 1-set consensus (= consensus), 1 failure: unsolvable.
  EXPECT_EQ(decide_t_resilient(colorless_set_consensus(1, 2), 4, 1, 3).status,
            Solvability::kUnsolvable);
  // 3-set consensus, 2 failures: solvable.
  EXPECT_EQ(decide_t_resilient(colorless_set_consensus(3, 4), 5, 2, 1).status,
            Solvability::kSolvable);
}

TEST(Resilience, ApproxAgreementSolvableAtAnyResilience) {
  // Approximate agreement is solvable for every t; the witness level grows
  // with the grid exactly as in the wait-free case.
  ResilienceVerdict v1 =
      decide_t_resilient(colorless_approx_agreement(3), 4, 1, 2);
  EXPECT_EQ(v1.status, Solvability::kSolvable);
  EXPECT_EQ(v1.wait_free_level, 1);

  ResilienceVerdict v9 =
      decide_t_resilient(colorless_approx_agreement(9), 4, 1, 3);
  EXPECT_EQ(v9.status, Solvability::kSolvable);
  EXPECT_EQ(v9.wait_free_level, 2);
}

TEST(Resilience, WaitFreeCaseAgreesWithDirectChecker) {
  // t = n-1 (wait-free): the reduction must agree with the direct checker
  // on the n-processor instance.
  // 2 processors wait-free consensus: both say unsolvable.
  EXPECT_EQ(decide_t_resilient(colorless_consensus(2), 2, 1, 3).status,
            Solvability::kUnsolvable);
  // 3 processors wait-free 3-set consensus: both say solvable.
  EXPECT_EQ(decide_t_resilient(colorless_set_consensus(3, 3), 3, 2, 1).status,
            Solvability::kSolvable);
}

TEST(Resilience, TwoSetConsensusTwoFailuresRefutedAtHigherLevelToo) {
  // The level-1 refutation extends to level 2 wait-free? (3-processor
  // 2-set consensus is the Sperner-hard instance; level 2 is expensive by
  // search, so keep the reduction at level 1 here and lean on E8 for all
  // levels -- this test documents the budgeted-refutation behaviour.)
  SolveOptions tight;
  tight.node_budget = 200'000;
  ResilienceVerdict v =
      decide_t_resilient(colorless_set_consensus(2, 3), 3, 2, 2, tight);
  // Level 1 is refuted within budget; level 2 exhausts it: overall unknown.
  EXPECT_EQ(v.status, Solvability::kUnknown);
}

}  // namespace
}  // namespace wfc::task
