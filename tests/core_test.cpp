// Tests for the Characterization facade.
#include <gtest/gtest.h>

#include "core/wfc.hpp"

namespace wfc {
namespace {

TEST(Characterize, SolvableTaskFullReport) {
  auto target = topo::standard_chromatic_subdivision(topo::base_simplex(3));
  task::SimplexAgreementTask t(3, target);
  CharacterizationReport rep = characterize(t);
  EXPECT_EQ(rep.status, task::Solvability::kSolvable);
  EXPECT_EQ(rep.level, 1);
  EXPECT_TRUE(rep.map_simplicial);
  EXPECT_TRUE(rep.map_color_preserving);
  // Faces of the input simplex: 7 (3 solo + 3 pairs + 1 full); executions:
  // 3*1 + 3*3 + 13 = 25.
  EXPECT_EQ(rep.executions_validated, 25u);
  EXPECT_NE(rep.summary(t.name()).find("SOLVABLE"), std::string::npos);
}

TEST(Characterize, UnsolvableTask) {
  task::ConsensusTask t(2, 2);
  CharacterizationReport rep = characterize(t);
  EXPECT_EQ(rep.status, task::Solvability::kUnsolvable);
  EXPECT_NE(rep.summary(t.name()).find("UNSOLVABLE"), std::string::npos);
}

TEST(Characterize, UnknownOnTinyBudget) {
  // Consensus is refuted by root propagation without branching, so use a
  // task that genuinely needs search: simplex agreement branches at least
  // twice before any verdict, exceeding a 1-node budget.
  auto target = topo::standard_chromatic_subdivision(topo::base_simplex(3));
  task::SimplexAgreementTask t(3, target);
  CharacterizeOptions opts;
  opts.max_level = 1;
  opts.solve.node_budget = 1;
  CharacterizationReport rep = characterize(t, opts);
  EXPECT_EQ(rep.status, task::Solvability::kUnknown);
  EXPECT_NE(rep.summary(t.name()).find("UNKNOWN"), std::string::npos);
}

TEST(Characterize, LevelZeroSolvableSkipsRounds) {
  task::IdentityTask t(topo::base_simplex(3));
  CharacterizationReport rep = characterize(t);
  EXPECT_EQ(rep.status, task::Solvability::kSolvable);
  EXPECT_EQ(rep.level, 0);
  EXPECT_EQ(rep.executions_validated, 7u);  // one "execution" per face
}

TEST(Characterize, ValidationCanBeDisabled) {
  task::IdentityTask t(topo::base_simplex(3));
  CharacterizeOptions opts;
  opts.validate_runs = false;
  CharacterizationReport rep = characterize(t, opts);
  EXPECT_EQ(rep.status, task::Solvability::kSolvable);
  EXPECT_EQ(rep.executions_validated, 0u);
}

TEST(Characterize, TwoProcCrossCheckRuns) {
  // Unsolvable 2-processor task: both deciders agree.
  task::ConsensusTask consensus(2, 2);
  CharacterizationReport rep = characterize(consensus);
  EXPECT_TRUE(rep.two_proc_checked);
  EXPECT_TRUE(rep.two_proc_agrees);
  EXPECT_NE(rep.summary(consensus.name()).find("criterion agrees"),
            std::string::npos);

  // Solvable 2-processor task at matching level.
  task::ApproxAgreementTask approx(2, 3);
  CharacterizationReport rep2 = characterize(approx);
  EXPECT_TRUE(rep2.two_proc_checked);
  EXPECT_TRUE(rep2.two_proc_agrees);

  // 3-processor tasks skip the cross-check.
  task::KSetConsensusTask t33(3, 3);
  CharacterizeOptions opts3;
  opts3.max_level = 1;
  CharacterizationReport rep3 = characterize(t33, opts3);
  EXPECT_FALSE(rep3.two_proc_checked);
}

TEST(Version, NonEmpty) {
  EXPECT_NE(std::string(version()).find("wfc"), std::string::npos);
}

}  // namespace
}  // namespace wfc
