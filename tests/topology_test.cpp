// Unit and property tests for the topology subsystem: complexes, the
// standard chromatic subdivision (Lemma 3.2/3.3), barycentric subdivision,
// geometric validity, pseudomanifold structure, Sperner machinery, and
// simplicial maps.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "topology/complex.hpp"
#include "topology/geometry.hpp"
#include "topology/ordered_partition.hpp"
#include "topology/simplicial_map.hpp"
#include "topology/sperner.hpp"
#include "topology/structure.hpp"
#include "topology/subdivision.hpp"

namespace wfc::topo {
namespace {

TEST(OrderedPartition, FubiniValues) {
  EXPECT_EQ(fubini(0), 1u);
  EXPECT_EQ(fubini(1), 1u);
  EXPECT_EQ(fubini(2), 3u);
  EXPECT_EQ(fubini(3), 13u);
  EXPECT_EQ(fubini(4), 75u);
  EXPECT_EQ(fubini(5), 541u);
  EXPECT_EQ(fubini(6), 4683u);
}

TEST(OrderedPartition, EnumerationMatchesFubini) {
  for (int k = 0; k <= 6; ++k) {
    std::uint64_t count = 0;
    for_each_ordered_partition(k, [&](const OrderedPartition&) { ++count; });
    EXPECT_EQ(count, fubini(k)) << "k=" << k;
  }
}

TEST(OrderedPartition, PartitionsAreValid) {
  for_each_ordered_partition(4, [&](const OrderedPartition& p) {
    std::set<int> seen;
    for (const auto& block : p) {
      EXPECT_FALSE(block.empty());
      for (int x : block) {
        EXPECT_GE(x, 0);
        EXPECT_LT(x, 4);
        EXPECT_TRUE(seen.insert(x).second) << "duplicate element";
      }
    }
    EXPECT_EQ(seen.size(), 4u);
  });
}

TEST(OrderedPartition, AllDistinct) {
  std::set<std::string> keys;
  for_each_ordered_partition(4, [&](const OrderedPartition& p) {
    std::string key;
    for (const auto& block : p) {
      key += '|';
      for (int x : block) key += static_cast<char>('0' + x);
    }
    EXPECT_TRUE(keys.insert(key).second);
  });
  EXPECT_EQ(keys.size(), 75u);
}

TEST(Complex, BaseSimplex) {
  ChromaticComplex s2 = base_simplex(3);
  EXPECT_EQ(s2.num_vertices(), 3u);
  EXPECT_EQ(s2.num_facets(), 1u);
  EXPECT_EQ(s2.dimension(), 2);
  EXPECT_TRUE(s2.is_pure());
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(s2.vertex(v).color, static_cast<Color>(v));
    EXPECT_EQ(s2.vertex(v).carrier, ColorSet::single(static_cast<Color>(v)));
  }
}

TEST(Complex, AddFacetRejectsDuplicateColors) {
  ChromaticComplex c(2);
  VertexId a = c.add_vertex(0, "a", ColorSet{0});
  VertexId b = c.add_vertex(0, "b", ColorSet{0});
  EXPECT_THROW(c.add_facet(make_simplex({a, b})), std::invalid_argument);
}

TEST(Complex, DuplicateKeysRejected) {
  ChromaticComplex c(2);
  c.add_vertex(0, "a", ColorSet{0});
  EXPECT_THROW(c.add_vertex(1, "a", ColorSet{1}), std::invalid_argument);
}

TEST(Complex, InternVertexIdempotent) {
  ChromaticComplex c(2);
  VertexId a = c.intern_vertex(0, "a", ColorSet{0});
  EXPECT_EQ(c.intern_vertex(0, "a", ColorSet{0}), a);
  EXPECT_EQ(c.num_vertices(), 1u);
  // Mismatched color on an existing key is a library bug.
  EXPECT_THROW(c.intern_vertex(1, "a", ColorSet{1}), std::logic_error);
}

TEST(Complex, DuplicateFacetIgnored) {
  ChromaticComplex c(2);
  VertexId a = c.add_vertex(0, "a", ColorSet{0});
  VertexId b = c.add_vertex(1, "b", ColorSet{1});
  std::size_t first = c.add_facet(make_simplex({a, b}));
  std::size_t second = c.add_facet(make_simplex({b, a}));
  EXPECT_EQ(first, second);
  EXPECT_EQ(c.num_facets(), 1u);
}

TEST(Complex, ContainsSimplex) {
  ChromaticComplex s2 = base_simplex(3);
  EXPECT_TRUE(s2.contains_simplex({0}));
  EXPECT_TRUE(s2.contains_simplex({0, 2}));
  EXPECT_TRUE(s2.contains_simplex({0, 1, 2}));
  EXPECT_FALSE(s2.contains_simplex({}));
  EXPECT_FALSE(s2.contains_simplex({0, 1, 2, 3}));  // unknown vertex
}

TEST(Complex, ForEachFaceCounts) {
  ChromaticComplex s2 = base_simplex(3);
  int faces = 0;
  s2.for_each_face([&](const Simplex&) { ++faces; });
  EXPECT_EQ(faces, 7);  // 3 vertices + 3 edges + 1 triangle
}

TEST(Complex, EulerCharacteristicOfSimplexIsOne) {
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(base_simplex(n + 1).euler_characteristic(), 1) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Standard chromatic subdivision: Lemma 3.2 / 3.3.
// ---------------------------------------------------------------------------

TEST(Sds, FacetCountIsFubini) {
  for (int n = 0; n <= 3; ++n) {
    ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(n + 1));
    EXPECT_EQ(sds.num_facets(), fubini(n + 1)) << "n=" << n;
    EXPECT_TRUE(sds.is_pure());
    EXPECT_EQ(sds.dimension(), n);
  }
}

TEST(Sds, VertexCountOfTriangle) {
  // SDS(s^2): 3 corners + 6 edge-interior + 3 central = 12 vertices.
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  EXPECT_EQ(sds.num_vertices(), 12u);
}

TEST(Sds, VertexCountOfEdge) {
  // SDS(s^1): 2 corners + 2 middle = 4 vertices, 3 edges.
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(2));
  EXPECT_EQ(sds.num_vertices(), 4u);
  EXPECT_EQ(sds.num_facets(), 3u);
}

// Each facet of SDS(s^n), read through carriers, must satisfy the three
// immediate-snapshot properties of §3.5: self-inclusion, containment chain,
// immediacy.  (For subdivisions of s^n the carrier of (P_i, S_i) is S_i.)
void expect_immediate_snapshot_properties(const ChromaticComplex& sds) {
  for (const Simplex& f : sds.facets()) {
    std::map<Color, ColorSet> view;
    for (VertexId v : f) view[sds.vertex(v).color] = sds.vertex(v).carrier;
    for (const auto& [i, si] : view) {
      EXPECT_TRUE(si.contains(i)) << "self-inclusion";
      for (const auto& [j, sj] : view) {
        EXPECT_TRUE(si.subset_of(sj) || sj.subset_of(si)) << "containment";
        if (sj.contains(i)) {
          EXPECT_TRUE(si.subset_of(sj)) << "immediacy";
        }
      }
    }
  }
}

TEST(Sds, ImmediateSnapshotProperties) {
  for (int n = 1; n <= 3; ++n) {
    expect_immediate_snapshot_properties(
        standard_chromatic_subdivision(base_simplex(n + 1)));
  }
}

TEST(Sds, EveryImmediateSnapshotOutputIsAVertex) {
  // Conversely: every (i, S) with i in S appears as a vertex (Lemma 3.2's
  // vertex set V).
  const int n = 2;
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(n + 1));
  std::set<std::pair<Color, std::uint32_t>> seen;
  for (VertexId v = 0; v < sds.num_vertices(); ++v) {
    seen.emplace(sds.vertex(v).color, sds.vertex(v).carrier.mask());
  }
  int expected = 0;
  for_each_nonempty_subset(ColorSet::full(n + 1), [&](ColorSet s) {
    for (Color i : s) {
      ++expected;
      EXPECT_TRUE(seen.count({i, s.mask()}))
          << "missing vertex (" << i << ", " << s.to_string() << ")";
    }
  });
  EXPECT_EQ(static_cast<int>(seen.size()), expected);
}

TEST(Sds, IsGeometricSubdivision) {
  for (int n = 1; n <= 3; ++n) {
    ChromaticComplex base = base_simplex(n + 1);
    ChromaticComplex sds = standard_chromatic_subdivision(base);
    SubdivisionReport rep = check_subdivision(sds, base, 256);
    EXPECT_TRUE(rep.volume_matches) << "n=" << n << " ratio=" << rep.volume_ratio;
    EXPECT_TRUE(rep.covers_samples) << "n=" << n;
    EXPECT_TRUE(rep.interiors_disjoint) << "n=" << n;
    EXPECT_TRUE(rep.carriers_match_support) << "n=" << n;
  }
}

TEST(Sds, IteratedIsGeometricSubdivision) {
  ChromaticComplex base = base_simplex(3);
  ChromaticComplex sds2 = iterated_sds(base, 2);
  EXPECT_EQ(sds2.num_facets(), 13u * 13u);
  SubdivisionReport rep = check_subdivision(sds2, base, 256);
  EXPECT_TRUE(rep.ok()) << "ratio=" << rep.volume_ratio;
}

TEST(Sds, IteratedLevelZeroIsCopy) {
  ChromaticComplex base = base_simplex(3);
  ChromaticComplex copy = iterated_sds(base, 0);
  EXPECT_EQ(copy.num_vertices(), base.num_vertices());
  EXPECT_EQ(copy.num_facets(), base.num_facets());
}

TEST(Sds, FacetsOfSubdivisionRestrictCorrectly) {
  // SDS(s^2) restricted to the edge {0,1} is SDS(s^1): 3 edges, 4 vertices.
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  ChromaticComplex face = sds.restrict_to_carrier(ColorSet{0, 1});
  EXPECT_EQ(face.num_facets(), 3u);
  EXPECT_EQ(face.num_vertices(), 4u);
  EXPECT_EQ(face.dimension(), 1);
}

TEST(Sds, EulerCharacteristicOne) {
  for (int b = 1; b <= 2; ++b) {
    EXPECT_EQ(iterated_sds(base_simplex(3), b).euler_characteristic(), 1);
  }
  EXPECT_EQ(iterated_sds(base_simplex(4), 1).euler_characteristic(), 1);
}

TEST(Sds, Pseudomanifold) {
  for (int n = 1; n <= 3; ++n) {
    ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(n + 1));
    PseudomanifoldReport rep = check_pseudomanifold(sds);
    EXPECT_TRUE(rep.ok()) << "n=" << n;
    EXPECT_GT(rep.boundary_ridges, 0u);
  }
}

TEST(Sds, PseudomanifoldIterated) {
  PseudomanifoldReport rep =
      check_pseudomanifold(iterated_sds(base_simplex(3), 2));
  EXPECT_TRUE(rep.ok());
}

TEST(Sds, ChromaticColoring) {
  // A coloring must be a dimension-preserving simplicial map onto s^n: every
  // facet carries all n+1 colors exactly once.
  ChromaticComplex sds = iterated_sds(base_simplex(3), 2);
  for (const Simplex& f : sds.facets()) {
    EXPECT_EQ(sds.colors_of(f), ColorSet::full(3));
  }
}

TEST(Sds, CentralVertexLinkIsCycle) {
  // The link of each central vertex (carrier = full) of SDS(s^2) is a cycle.
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  int central = 0;
  for (VertexId v = 0; v < sds.num_vertices(); ++v) {
    if (sds.vertex(v).carrier == ColorSet::full(3)) {
      ++central;
      EXPECT_TRUE(link_is_cycle(sds, v)) << "vertex " << v;
    }
  }
  EXPECT_EQ(central, 3);
}

TEST(Sds, Connected) {
  EXPECT_EQ(num_connected_components(iterated_sds(base_simplex(3), 2)), 1);
  EXPECT_EQ(num_connected_components(iterated_sds(base_simplex(4), 1)), 1);
}

TEST(Sds, CarrierOfCornerVerticesPreserved) {
  ChromaticComplex sds = iterated_sds(base_simplex(3), 2);
  // Exactly one vertex per color has a singleton carrier (the corner),
  // which never subdivides further.
  for (Color c = 0; c < 3; ++c) {
    int corners = 0;
    for (VertexId v : sds.vertices_with_color(c)) {
      if (sds.vertex(v).carrier == ColorSet::single(c)) ++corners;
    }
    EXPECT_EQ(corners, 1) << "color " << c;
  }
}

TEST(Sds, SubdividesGeneralComplexes) {
  // Two triangles glued along an edge; SDS must agree on the shared edge.
  ChromaticComplex c(3);
  VertexId a = c.add_vertex(0, "a", ColorSet{0});
  VertexId b = c.add_vertex(1, "b", ColorSet{1});
  VertexId x = c.add_vertex(2, "x", ColorSet{2});
  VertexId y = c.add_vertex(2, "y", ColorSet{2});
  c.add_facet(make_simplex({a, b, x}));
  c.add_facet(make_simplex({a, b, y}));
  ChromaticComplex sds = standard_chromatic_subdivision(c);
  EXPECT_EQ(sds.num_facets(), 2u * 13u);
  // Vertices: 12 per triangle, minus the 4 shared on edge {a,b}.
  EXPECT_EQ(sds.num_vertices(), 20u);
  PseudomanifoldReport rep = check_pseudomanifold(sds);
  EXPECT_TRUE(rep.pure);
  EXPECT_TRUE(rep.ridge_degree_ok);
}

// ---------------------------------------------------------------------------
// Barycentric subdivision.
// ---------------------------------------------------------------------------

TEST(Bsd, TriangleCounts) {
  ChromaticComplex bsd = barycentric_subdivision(base_simplex(3));
  EXPECT_EQ(bsd.num_facets(), 6u);   // 3! flags
  EXPECT_EQ(bsd.num_vertices(), 7u);  // one barycenter per face
}

TEST(Bsd, IsGeometricSubdivision) {
  for (int n = 1; n <= 3; ++n) {
    ChromaticComplex base = base_simplex(n + 1);
    SubdivisionReport rep =
        check_subdivision(barycentric_subdivision(base), base, 256);
    EXPECT_TRUE(rep.ok()) << "n=" << n << " ratio=" << rep.volume_ratio;
  }
}

TEST(Bsd, IteratedIsGeometricSubdivision) {
  ChromaticComplex base = base_simplex(3);
  ChromaticComplex bsd2 = iterated_bsd(base, 2);
  EXPECT_EQ(bsd2.num_facets(), 36u);
  EXPECT_TRUE(check_subdivision(bsd2, base, 256).ok());
}

TEST(Bsd, ColoredByDimension) {
  ChromaticComplex bsd = barycentric_subdivision(base_simplex(3));
  for (const Simplex& f : bsd.facets()) {
    EXPECT_EQ(bsd.colors_of(f), ColorSet::full(3));  // one per dimension
  }
}

// ---------------------------------------------------------------------------
// Geometry utilities.
// ---------------------------------------------------------------------------

TEST(Geometry, LocatePointInSds) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  auto loc = locate_point(sds, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  ASSERT_TRUE(loc.has_value());
  // The barycenter lies in (the closure of) the central simplex, whose
  // carrier is full.
  EXPECT_EQ(sds.carrier_of(sds.facets()[loc->facet]), ColorSet::full(3));
}

TEST(Geometry, LocateCorner) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  auto loc = locate_point(sds, {1.0, 0.0, 0.0});
  ASSERT_TRUE(loc.has_value());
}

TEST(Geometry, TotalVolumeOfBase) {
  // Base simplex in its own barycentric frame: the n-volume of the standard
  // simplex spanned by unit vectors e_0..e_n is sqrt(n+1)/n!.
  ChromaticComplex s2 = base_simplex(3);
  EXPECT_NEAR(total_facet_volume(s2), std::sqrt(3.0) / 2.0, 1e-12);
}

TEST(Geometry, RandomPointStaysInFacet) {
  ChromaticComplex s2 = base_simplex(3);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    auto p = random_point_in_facet(s2, 0, rng);
    double sum = 0;
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// The checker itself must detect broken subdivisions, not just bless good
// ones: puncture SDS(s^2) and check_subdivision must flag the missing area.
TEST(Geometry, CheckerDetectsMissingFacet) {
  ChromaticComplex base = base_simplex(3);
  ChromaticComplex sds = standard_chromatic_subdivision(base);
  ChromaticComplex holed = drop_facet(sds, 0);
  SubdivisionReport rep = check_subdivision(holed, base, 256);
  EXPECT_FALSE(rep.volume_matches);
  EXPECT_LT(rep.volume_ratio, 1.0);
  EXPECT_FALSE(rep.covers_samples);
  EXPECT_FALSE(rep.ok());
}

TEST(Geometry, CheckerDetectsOverlap) {
  // Add a duplicate facet shifted to overlap: interior disjointness fails.
  ChromaticComplex base = base_simplex(3);
  ChromaticComplex bad = standard_chromatic_subdivision(base);
  // Re-add an existing facet with one vertex replaced by the barycenter of
  // the whole triangle (a fresh vertex): the new triangle overlaps others.
  const Simplex f = bad.facets()[0];
  const Color c = bad.vertex(f[0]).color;
  VertexId center = bad.add_vertex(c, "overlap-center", ColorSet::full(3),
                                   {1.0 / 3, 1.0 / 3, 1.0 / 3});
  Simplex overlapping{center, f[1], f[2]};
  bad.add_facet(make_simplex(std::move(overlapping)));
  SubdivisionReport rep = check_subdivision(bad, base, 256);
  EXPECT_FALSE(rep.interiors_disjoint || rep.volume_matches);
}

TEST(Geometry, CheckerDetectsCarrierLies) {
  // A vertex claiming a smaller carrier than its coordinates support.
  ChromaticComplex c(2);
  VertexId a = c.add_vertex(0, "a", ColorSet{0}, {1.0, 0.0});
  // Claims carrier {1} but sits strictly inside the edge.
  VertexId b = c.add_vertex(1, "b", ColorSet{1}, {0.5, 0.5});
  c.add_facet(make_simplex({a, b}));
  ChromaticComplex base = base_simplex(2);
  SubdivisionReport rep = check_subdivision(c, base, 16);
  EXPECT_FALSE(rep.carriers_match_support);
}

// ---------------------------------------------------------------------------
// Sperner machinery.
// ---------------------------------------------------------------------------

TEST(Sperner, MinCarrierLabelingIsSperner) {
  ChromaticComplex sds = iterated_sds(base_simplex(3), 2);
  Labeling lab = min_carrier_labeling(sds);
  EXPECT_TRUE(is_sperner_labeling(sds, lab));
}

TEST(Sperner, RandomLabelingsAreSperner) {
  ChromaticComplex sds = iterated_sds(base_simplex(3), 1);
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(is_sperner_labeling(sds, random_sperner_labeling(sds, rng)));
  }
}

TEST(Sperner, ParityOddOnSds) {
  // Sperner's lemma on SDS^b(s^n): every Sperner labeling has an odd number
  // of panchromatic facets.  This is the engine of the set-consensus
  // impossibility (E8).
  Rng rng(23);
  for (int n = 1; n <= 2; ++n) {
    for (int b = 1; b <= 2; ++b) {
      ChromaticComplex sds = iterated_sds(base_simplex(n + 1), b);
      for (int trial = 0; trial < 25; ++trial) {
        Labeling lab = random_sperner_labeling(sds, rng);
        EXPECT_TRUE(sperner_parity_holds(sds, lab))
            << "n=" << n << " b=" << b << " trial=" << trial;
      }
    }
  }
}

TEST(Sperner, ParityOddOnBsd) {
  Rng rng(31);
  ChromaticComplex bsd = iterated_bsd(base_simplex(3), 2);
  for (int trial = 0; trial < 25; ++trial) {
    EXPECT_TRUE(sperner_parity_holds(bsd, random_sperner_labeling(bsd, rng)));
  }
}

TEST(Sperner, NonSpernerDetected) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  Labeling lab = min_carrier_labeling(sds);
  // Find a vertex whose carrier is not full and mislabel it.
  for (VertexId v = 0; v < sds.num_vertices(); ++v) {
    ColorSet car = sds.vertex(v).carrier;
    if (car != ColorSet::full(3)) {
      lab[v] = ColorSet::full(3).minus(car).min();
      break;
    }
  }
  EXPECT_FALSE(is_sperner_labeling(sds, lab));
}

// ---------------------------------------------------------------------------
// Simplicial maps.
// ---------------------------------------------------------------------------

TEST(SimplicialMap, IdentityOnSds) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  SimplicialMap id(sds, sds);
  for (VertexId v = 0; v < sds.num_vertices(); ++v) id.set(v, v);
  EXPECT_TRUE(id.is_total());
  EXPECT_TRUE(id.is_simplicial());
  EXPECT_TRUE(id.is_color_preserving());
  EXPECT_TRUE(id.is_dimension_preserving());
  EXPECT_TRUE(id.is_carrier_monotone());
  EXPECT_TRUE(id.is_carrier_preserving_strict());
}

TEST(SimplicialMap, CarrierCollapseToCorner) {
  // Map every vertex of SDS(s^1) of color c to the corner of color c.
  ChromaticComplex base = base_simplex(2);
  ChromaticComplex sds = standard_chromatic_subdivision(base);
  SimplicialMap phi(sds, base);
  for (VertexId v = 0; v < sds.num_vertices(); ++v) {
    phi.set(v, base.vertices_with_color(sds.vertex(v).color)[0]);
  }
  EXPECT_TRUE(phi.is_simplicial());
  EXPECT_TRUE(phi.is_color_preserving());
  EXPECT_TRUE(phi.is_carrier_monotone());
  // Corner images shrink carriers of the middle vertices: not strict.
  EXPECT_FALSE(phi.is_carrier_preserving_strict());
}

TEST(SimplicialMap, NonSimplicialDetected) {
  // Map the two middle vertices of SDS(s^1) to opposite corners: the middle
  // edge's image {P0, P1} is a simplex of base... so instead collapse an
  // edge to two non-adjacent vertices of SDS(s^1): corners P0 and P1 are not
  // adjacent in SDS(s^1) (the middle vertices separate them).
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(2));
  VertexId p0 = kNoVertex, p1 = kNoVertex;
  for (VertexId v = 0; v < sds.num_vertices(); ++v) {
    if (sds.vertex(v).carrier == ColorSet{0}) p0 = v;
    if (sds.vertex(v).carrier == ColorSet{1}) p1 = v;
  }
  ASSERT_NE(p0, kNoVertex);
  ASSERT_NE(p1, kNoVertex);
  SimplicialMap phi(sds, sds);
  for (VertexId v = 0; v < sds.num_vertices(); ++v) {
    phi.set(v, sds.vertex(v).color == 0 ? p0 : p1);
  }
  EXPECT_FALSE(phi.is_simplicial());
}

TEST(SimplicialMap, PartialMapIsNotSimplicial) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(2));
  SimplicialMap phi(sds, sds);
  EXPECT_FALSE(phi.is_total());
  EXPECT_FALSE(phi.is_simplicial());
  EXPECT_EQ(phi.at(0), kNoVertex);
}

TEST(SimplicialMap, Compose) {
  ChromaticComplex base = base_simplex(2);
  ChromaticComplex sds = standard_chromatic_subdivision(base);
  ChromaticComplex sds2 = standard_chromatic_subdivision(sds);
  // Color-collapse maps SDS^2 -> SDS -> base; composition stays simplicial
  // and color preserving.
  auto collapse = [](const ChromaticComplex& from, const ChromaticComplex& to) {
    SimplicialMap m(from, to);
    for (VertexId v = 0; v < from.num_vertices(); ++v) {
      m.set(v, to.vertices_with_color(from.vertex(v).color)[0]);
    }
    return m;
  };
  SimplicialMap f = collapse(sds2, sds);
  SimplicialMap g = collapse(sds, base);
  SimplicialMap gf = compose(f, g);
  EXPECT_TRUE(gf.is_color_preserving());
  EXPECT_TRUE(gf.is_simplicial());
}

TEST(Boundary, OfSubdividedEdgeIsTwoPoints) {
  ChromaticComplex sds = iterated_sds(base_simplex(2), 2);
  ChromaticComplex bd = boundary_complex(sds);
  EXPECT_EQ(bd.dimension(), 0);
  EXPECT_EQ(bd.num_facets(), 2u);
}

TEST(Boundary, OfSubdividedTriangleIsCycle) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  ChromaticComplex bd = boundary_complex(sds);
  EXPECT_EQ(bd.dimension(), 1);
  // Each of the 3 sides subdivides into SDS(s^1): 3 edges each.
  EXPECT_EQ(bd.num_facets(), 9u);
  EXPECT_EQ(bd.num_vertices(), 9u);
  // A cycle: chi = 0, connected, closed.
  EXPECT_EQ(bd.euler_characteristic(), 0);
  EXPECT_EQ(num_connected_components(bd), 1);
  EXPECT_EQ(check_pseudomanifold(bd).boundary_ridges, 0u);
}

TEST(Boundary, RejectsClosedComplex) {
  // The boundary of a boundary is empty; asking for it must throw.
  ChromaticComplex bd =
      boundary_complex(standard_chromatic_subdivision(base_simplex(3)));
  EXPECT_THROW((void)boundary_complex(bd), std::invalid_argument);
}

TEST(DropFacet, RemovesExactlyOne) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  ChromaticComplex cut = drop_facet(sds, 0);
  EXPECT_EQ(cut.num_facets(), sds.num_facets() - 1);
  EXPECT_THROW((void)drop_facet(sds, sds.num_facets()), std::invalid_argument);
}

TEST(DropFacet, InteriorPunctureKeepsVerticesAndOpensRidges) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  // Find an interior facet (all carriers full): the central triangle.
  std::size_t interior = sds.num_facets();
  for (std::size_t fi = 0; fi < sds.num_facets(); ++fi) {
    bool all_full = true;
    for (VertexId v : sds.facets()[fi]) {
      if (sds.vertex(v).carrier != ColorSet::full(3)) all_full = false;
    }
    if (all_full) interior = fi;
  }
  ASSERT_LT(interior, sds.num_facets());
  ChromaticComplex cut = drop_facet(sds, interior);
  EXPECT_EQ(cut.num_vertices(), sds.num_vertices());
  // The puncture's three ridges become boundary: 9 outer + 3 new.
  PseudomanifoldReport rep = check_pseudomanifold(cut);
  EXPECT_EQ(rep.boundary_ridges, 12u);
  // The carrier-based boundary check correctly flags the anomaly: interior
  // ridges (full carrier) now have degree 1.
  EXPECT_FALSE(rep.boundary_matches_carrier);
}

TEST(StarLink, ClosedStarOfCorner) {
  ChromaticComplex sds = standard_chromatic_subdivision(base_simplex(3));
  VertexId corner = kNoVertex;
  for (VertexId v = 0; v < sds.num_vertices(); ++v) {
    if (sds.vertex(v).carrier == ColorSet{0}) corner = v;
  }
  ASSERT_NE(corner, kNoVertex);
  ChromaticComplex star = closed_star(sds, {corner});
  // Corner of SDS(s^2) is in exactly 1 triangle (ordered partitions where
  // {0} is the first block alone contribute; corner vertex (0,{0}) appears
  // in partitions whose first block is {0}: fubini(2)=3... count facets).
  EXPECT_EQ(star.num_facets(), sds.facets_containing(corner).size());
  ChromaticComplex lk = link(sds, {corner});
  EXPECT_EQ(lk.dimension(), 1);
}

}  // namespace
}  // namespace wfc::topo
