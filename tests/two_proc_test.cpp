// The 2-processor connectivity criterion vs the general Prop 3.1 search:
// two independent decision procedures for the same question must agree on
// every 2-processor task in the library.
#include <gtest/gtest.h>

#include "runtime/sim_is.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "tasks/two_proc.hpp"
#include "topology/structure.hpp"
#include "topology/subdivision.hpp"

namespace wfc::task {
namespace {

TEST(TwoProc, ConsensusUnsolvable) {
  ConsensusTask t(2, 2);
  TwoProcVerdict v = decide_two_processors(t);
  EXPECT_FALSE(v.solvable);
}

TEST(TwoProc, TernaryConsensusUnsolvable) {
  ConsensusTask t(2, 3);
  EXPECT_FALSE(decide_two_processors(t).solvable);
}

TEST(TwoProc, IdentitySolvableAtLevelZero) {
  IdentityTask t(topo::base_simplex(2));
  TwoProcVerdict v = decide_two_processors(t);
  EXPECT_TRUE(v.solvable);
  EXPECT_EQ(v.level_lower_bound, 0);
}

TEST(TwoProc, RenamingSolvable) {
  RenamingTask t(2, 3);
  TwoProcVerdict v = decide_two_processors(t);
  EXPECT_TRUE(v.solvable);
  EXPECT_EQ(v.level_lower_bound, 0);  // identity naming is adjacent
}

TEST(TwoProc, ApproxAgreementLevelsMatchLogThree) {
  for (int grid : {1, 2, 3, 5, 9, 27, 81, 100}) {
    ApproxAgreementTask t(2, grid);
    TwoProcVerdict v = decide_two_processors(t);
    ASSERT_TRUE(v.solvable) << grid;
    int expected = 0;
    for (int reach = 1; reach < grid; reach *= 3) ++expected;
    EXPECT_EQ(v.level_lower_bound, expected) << grid;
  }
}

TEST(TwoProc, AgreesWithSearchOnSolvables) {
  // Cross-validate the two decision procedures where both are cheap.
  for (int grid : {2, 3, 5, 9}) {
    ApproxAgreementTask t(2, grid);
    TwoProcVerdict fast = decide_two_processors(t);
    SolveResult slow = solve(t, fast.level_lower_bound);
    ASSERT_EQ(slow.status, Solvability::kSolvable) << grid;
    EXPECT_EQ(slow.level, fast.level_lower_bound) << grid;
  }
}

TEST(TwoProc, AgreesWithSearchOnUnsolvables) {
  ConsensusTask consensus(2, 2);
  EXPECT_FALSE(decide_two_processors(consensus).solvable);
  EXPECT_EQ(solve(consensus, 3).status, Solvability::kUnsolvable);

  KSetConsensusTask set21(2, 1);
  EXPECT_FALSE(decide_two_processors(set21).solvable);
}

TEST(TwoProc, SimplexAgreementDepthMatches) {
  for (int depth = 1; depth <= 3; ++depth) {
    SimplexAgreementTask t(2, topo::iterated_sds(topo::base_simplex(2), depth));
    TwoProcVerdict v = decide_two_processors(t);
    ASSERT_TRUE(v.solvable);
    EXPECT_EQ(v.level_lower_bound, depth);
  }
}

TEST(TwoProc, DisconnectedTargetUnsolvable) {
  // Cutting an interior edge of SDS^2(s^1) disconnects the pinned corners.
  topo::ChromaticComplex sds2 = topo::iterated_sds(topo::base_simplex(2), 2);
  for (std::size_t fi = 0; fi < sds2.num_facets(); ++fi) {
    bool interior = true;
    for (topo::VertexId v : sds2.facets()[fi]) {
      if (sds2.vertex(v).carrier != ColorSet::full(2)) interior = false;
    }
    if (!interior) continue;
    SimplexAgreementTask t(2, topo::drop_facet(sds2, fi));
    EXPECT_FALSE(decide_two_processors(t).solvable);
    return;
  }
  FAIL() << "no interior edge found";
}

TEST(TwoProc, RejectsWrongArity) {
  ConsensusTask t(3, 2);
  EXPECT_THROW((void)decide_two_processors(t), std::invalid_argument);
}

TEST(TwoProc, WitnessDecisionsAreAllowedSolo) {
  ApproxAgreementTask t(2, 9);
  TwoProcVerdict v = decide_two_processors(t);
  ASSERT_TRUE(v.solvable);
  ASSERT_EQ(v.solo_decision.size(), t.input().num_vertices());
  for (topo::VertexId u = 0; u < t.input().num_vertices(); ++u) {
    EXPECT_TRUE(t.allows({u}, {v.solo_decision[u]}));
    EXPECT_EQ(t.output().vertex(v.solo_decision[u]).color,
              t.input().vertex(u).color);
  }
}

// ---------------------------------------------------------------------------
// The non-iterated IS model (§3.4).
// ---------------------------------------------------------------------------

TEST(IsModel, SameBlockSeesSameMemory) {
  using rt::MemoryView;
  using rt::Step;
  std::map<std::pair<int, int>, MemoryView<int>> views;  // (proc, step)
  std::function<int(int)> init = [](int p) { return 100 + p; };
  std::function<Step<int>(int, int, const MemoryView<int>&)> on_step =
      [&](int p, int k, const MemoryView<int>& view) {
        views[{p, k}] = view;
        return k < 2 ? Step<int>::cont(200 + p) : Step<int>::halt();
      };
  rt::BlockSchedule sched = {ColorSet{0, 1}, ColorSet{2}, ColorSet{0, 1, 2},
                             ColorSet{2}};
  rt::run_is_model<int>(3, sched, init, on_step);
  const auto v01 = views[{0, 1}];
  const auto v11 = views[{1, 1}];
  const auto v21 = views[{2, 1}];
  const auto v02 = views[{0, 2}];
  const auto v12 = views[{1, 2}];
  // Block {0,1}, step 1: identical views.
  EXPECT_EQ(v01, v11);
  // And they contain each other's writes but not P2's.
  EXPECT_EQ(v01[1], 101);
  EXPECT_FALSE(v01[2].has_value());
  // Second block {2}: sees the first block's writes.
  EXPECT_EQ(v21[0], 100);
  // Third block: everyone writes second values, all see them.
  EXPECT_EQ(v02, v12);
  EXPECT_EQ(v02[2], 202);
}

TEST(IsModel, ViewsOrderedByContainment) {
  using rt::MemoryView;
  using rt::Step;
  std::vector<MemoryView<int>> all_views;
  std::function<int(int)> init = [](int p) { return p; };
  std::function<Step<int>(int, int, const MemoryView<int>&)> on_step =
      [&](int, int k, const MemoryView<int>& view) {
        all_views.push_back(view);
        return k < 3 ? Step<int>::cont(k * 10) : Step<int>::halt();
      };
  Rng rng(5);
  rt::BlockSchedule sched = rt::random_block_schedule(4, 3, rng);
  rt::run_is_model<int>(4, sched, init, on_step);
  // Count of written cells is monotone across the execution order; any two
  // views are comparable by "written-cell subset".
  auto written = [](const MemoryView<int>& v) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i].has_value()) mask |= 1u << i;
    }
    return mask;
  };
  for (const auto& a : all_views) {
    for (const auto& b : all_views) {
      const std::uint32_t ma = written(a), mb = written(b);
      EXPECT_TRUE((ma & mb) == ma || (ma & mb) == mb);
    }
  }
}

TEST(IsModel, OneShotMatchesImmediateSnapshotComplex) {
  // Restricting each processor to one WriteRead, the distinct (proc, view)
  // pairs across all one-round block schedules = vertices of SDS(s^2).
  using rt::MemoryView;
  using rt::Step;
  std::set<std::pair<int, std::vector<int>>> distinct;
  // All ordered partitions of {0,1,2} as block schedules.
  topo::for_each_ordered_partition(3, [&](const topo::OrderedPartition& op) {
    rt::BlockSchedule sched;
    for (const auto& block : op) {
      ColorSet s;
      for (int x : block) s = s.with(x);
      sched.push_back(s);
    }
    std::function<int(int)> init = [](int p) { return p; };
    std::function<Step<int>(int, int, const MemoryView<int>&)> on_step =
        [&](int p, int, const MemoryView<int>& view) {
          std::vector<int> flat;
          for (std::size_t i = 0; i < view.size(); ++i) {
            if (view[i].has_value()) flat.push_back(static_cast<int>(i));
          }
          distinct.insert({p, flat});
          return Step<int>::halt();
        };
    rt::run_is_model<int>(3, sched, init, on_step);
  });
  EXPECT_EQ(distinct.size(),
            topo::standard_chromatic_subdivision(topo::base_simplex(3))
                .num_vertices());
}

TEST(IsModel, ThrowsOnShortSchedule) {
  std::function<int(int)> init = [](int p) { return p; };
  std::function<rt::Step<int>(int, int, const rt::MemoryView<int>&)> on_step =
      [](int, int, const rt::MemoryView<int>&) { return rt::Step<int>::cont(0); };
  EXPECT_THROW(rt::run_is_model<int>(2, {ColorSet{0, 1}}, init, on_step),
               std::logic_error);
}

}  // namespace
}  // namespace wfc::task
