// Tests for wfc::chaosnet: the seeded fault-injection proxy (byte-level
// determinism per seed, every fault mode observable through net::Client,
// the JSONL admin protocol) and the router hardening it exists to prove --
// exactly-once delivery through the proxy under every fault regime, active
// probe eviction beating pending_timeout on a blackholed shard, retry
// budgets capping re-dispatch amplification, and hop deadline propagation
// (remaining, not original, timeout_ms on hedges; fast-fail once spent).
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "net/chaosproxy.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/jsonl.hpp"
#include "service/query_service.hpp"

namespace wfc::net {
namespace {

using Fields = std::map<std::string, std::string>;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

Fields parse(const std::string& line) { return svc::parse_flat_json(line); }

std::string field(const Fields& fields, const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

svc::QueryService::Options service_options() {
  svc::QueryService::Options options;
  options.workers = 2;
  return options;
}

/// One backend shard: a QueryService behind a started TCP server.
struct Backend {
  explicit Backend(const std::string& shard_id)
      : service(service_options()) {
    ServerConfig config;
    config.listen = Endpoint{"127.0.0.1", 0};
    config.handler.server_id = shard_id;
    server = std::make_unique<Server>(service, std::move(config));
    server->start();
  }
  svc::QueryService service;
  std::unique_ptr<Server> server;
};

/// A raw upstream that records every byte of every accepted connection
/// (one capture per connection, in accept order) and answers nothing.
struct CaptureSink {
  CaptureSink() {
    listener = listen_tcp(Endpoint{"127.0.0.1", 0}, &port);
    thread = std::thread([this] {
      while (!stop.load()) {
        pollfd lp{listener.get(), POLLIN, 0};
        if (::poll(&lp, 1, 20) <= 0) continue;
        Fd conn(::accept(listener.get(), nullptr, nullptr));
        if (!conn.valid()) continue;
        std::string bytes;
        char buf[4096];
        for (;;) {
          pollfd cp{conn.get(), POLLIN, 0};
          if (::poll(&cp, 1, 5000) <= 0) break;
          const ssize_t n = ::recv(conn.get(), buf, sizeof(buf), 0);
          if (n <= 0) break;
          bytes.append(buf, static_cast<std::size_t>(n));
        }
        std::lock_guard<std::mutex> lk(mu);
        captures.push_back(std::move(bytes));
      }
    });
  }
  ~CaptureSink() {
    stop.store(true);
    thread.join();
  }
  [[nodiscard]] std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lk(mu);
    return captures;
  }
  /// Waits until `n` connections have fully closed (5 s bound).
  [[nodiscard]] bool wait_captures(std::size_t n) {
    for (int spin = 0; spin < 500; ++spin) {
      {
        std::lock_guard<std::mutex> lk(mu);
        if (captures.size() >= n) return true;
      }
      std::this_thread::sleep_for(10ms);
    }
    return false;
  }
  Fd listener;
  std::uint16_t port = 0;
  std::thread thread;
  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<std::string> captures;
};

/// A TCP peer that accepts and never answers (the silent shard).
struct BlackHole {
  BlackHole() {
    listener = listen_tcp(Endpoint{"127.0.0.1", 0}, &port);
    thread = std::thread([this] {
      std::vector<Fd> accepted;
      while (!stop.load()) {
        pollfd p{listener.get(), POLLIN, 0};
        if (::poll(&p, 1, 20) > 0) {
          const int fd = ::accept(listener.get(), nullptr, nullptr);
          if (fd >= 0) accepted.emplace_back(fd);
        }
      }
    });
  }
  ~BlackHole() {
    stop.store(true);
    thread.join();
  }
  Fd listener;
  std::uint16_t port = 0;
  std::thread thread;
  std::atomic<bool> stop{false};
};

/// A LineBackend shard stub that records every request line and answers
/// ok, echoing the id -- the observer for deadline-rewrite assertions.
struct RecordingBackend : LineBackend {
  Outcome on_line(std::string_view line, int, Done) override {
    std::string id;
    try {
      id = field(parse(std::string(line)), "id");
    } catch (const std::exception&) {
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      lines.push_back(std::string(line));
    }
    Outcome out;
    out.kind = Outcome::Kind::kRespond;
    svc::JsonWriter w;
    if (!id.empty()) w.field("id", id);
    w.field("status", "ok").field("verdict", "RECORDED");
    out.response = w.str();
    return out;
  }
  std::string control(std::string_view, int) override { return "{}"; }
  [[nodiscard]] std::size_t max_line_bytes() const override { return 1 << 16; }
  [[nodiscard]] std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lk(mu);
    return lines;
  }
  std::mutex mu;
  std::vector<std::string> lines;
};

ChaosProxyConfig one_link(const std::string& id, std::uint16_t upstream_port,
                          std::uint64_t seed = 42) {
  ChaosProxyConfig config;
  config.links.push_back(
      ChaosLinkSpec{id, Endpoint{"127.0.0.1", 0},
                    Endpoint{"127.0.0.1", upstream_port}});
  config.seed = seed;
  return config;
}

Client connect_to(std::uint16_t port, std::chrono::milliseconds recv = 0ms) {
  ClientConfig config;
  config.server = Endpoint{"127.0.0.1", port};
  config.recv_timeout = recv;
  return Client(std::move(config));
}

/// The router's routing key for a consensus solve (mirrors make_key).
std::uint64_t consensus_key(int values) {
  return cluster::fnv1a64("procs=2;task=consensus;values=" +
                          std::to_string(values) + ";");
}

int consensus_values_owned_by(const cluster::Ring& ring,
                              const std::string& target) {
  for (int v = 2; v < 60; ++v) {
    if (ring.pick(consensus_key(v)) == target) return v;
  }
  ADD_FAILURE() << "no consensus fingerprint landed on " << target;
  return 2;
}

// ---------------------------------------------------------------------------
// Proxy basics.
// ---------------------------------------------------------------------------

TEST(ChaosProxy, FaultModeNamesRoundTrip) {
  const FaultMode all[] = {FaultMode::kNone,      FaultMode::kLatency,
                           FaultMode::kBandwidth, FaultMode::kCorrupt,
                           FaultMode::kBlackhole, FaultMode::kRst,
                           FaultMode::kTrickle,   FaultMode::kHalfOpen};
  for (const FaultMode mode : all) {
    FaultMode back = FaultMode::kRst;
    ASSERT_TRUE(parse_fault_mode(fault_mode_name(mode), &back))
        << fault_mode_name(mode);
    EXPECT_EQ(back, mode);
  }
  FaultMode out;
  EXPECT_FALSE(parse_fault_mode("gremlins", &out));
}

TEST(ChaosProxy, RelaysVerbatimAndCountsBytes) {
  Backend backend("s1");
  ChaosProxy proxy(one_link("s1", backend.server->port()));
  proxy.start();
  Client client = connect_to(proxy.port("s1"));
  const Fields fields = parse(client.roundtrip(
      R"({"id":"a","op":"solve","task":"consensus","procs":2,"values":2})"));
  EXPECT_EQ(field(fields, "id"), "a");
  EXPECT_EQ(field(fields, "status"), "ok");
  EXPECT_EQ(field(fields, "verdict"), "UNSOLVABLE");
  const ChaosProxy::LinkStats stats = proxy.link_stats("s1");
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_GT(stats.bytes_up, 0u);
  EXPECT_GT(stats.bytes_down, 0u);
  EXPECT_EQ(stats.corrupted_bytes, 0u);
  EXPECT_EQ(stats.dropped_bytes, 0u);
  proxy.stop();
}

TEST(ChaosProxy, AdminOpsFlipFaultsAndValidate) {
  Backend backend("s1");
  ChaosProxy proxy(one_link("s1", backend.server->port()));
  proxy.start();
  ServerConfig admin_config;
  admin_config.listen = Endpoint{"127.0.0.1", 0};
  Server admin(proxy, admin_config);
  admin.start();
  Client client = connect_to(admin.port());

  const Fields info = parse(client.roundtrip(R"({"id":"i","op":"info"})"));
  EXPECT_EQ(field(info, "role"), "chaosnet");
  EXPECT_EQ(field(info, "links"), "1");

  const Fields ok = parse(client.roundtrip(
      R"({"id":"f1","op":"fault","link":"s1","mode":"latency","ms":80})"));
  EXPECT_EQ(field(ok, "status"), "ok");
  EXPECT_EQ(proxy.fault("s1").mode, FaultMode::kLatency);
  EXPECT_EQ(proxy.fault("s1").latency, 80ms);

  const Fields star = parse(client.roundtrip(
      R"({"id":"f2","op":"fault","link":"*","mode":"none"})"));
  EXPECT_EQ(field(star, "status"), "ok");
  EXPECT_EQ(proxy.fault("s1").mode, FaultMode::kNone);

  const Fields bad_mode = parse(client.roundtrip(
      R"({"id":"f3","op":"fault","link":"s1","mode":"gremlins"})"));
  EXPECT_EQ(field(bad_mode, "status"), "invalid_argument");
  const Fields bad_link = parse(client.roundtrip(
      R"({"id":"f4","op":"fault","link":"nope","mode":"none"})"));
  EXPECT_EQ(field(bad_link, "status"), "invalid_argument");

  const Fields stats =
      parse(client.roundtrip(R"({"id":"s","op":"chaos_stats"})"));
  EXPECT_EQ(field(stats, "status"), "ok");
  EXPECT_EQ(field(stats, "link_s1_mode"), "none");
  admin.drain();
  proxy.stop();
}

TEST(ChaosProxy, CorruptionIsDeterministicPerSeed) {
  // Same seed + same bytes through fresh proxies must corrupt identically;
  // a different seed must not.  (The draw stream is per byte, so TCP
  // segmentation cannot perturb it.)
  const std::string payload(2048, 'A');
  auto run = [&payload](std::uint64_t seed) {
    CaptureSink sink;
    ChaosProxy proxy(one_link("s1", sink.port, seed));
    FaultSpec corrupt;
    corrupt.mode = FaultMode::kCorrupt;
    corrupt.corrupt_prob = 0.05;
    proxy.set_fault("s1", corrupt);
    proxy.start();
    {
      Client client = connect_to(proxy.port("s1"));
      client.send_raw(payload);
      client.shutdown_write();
    }
    EXPECT_TRUE(sink.wait_captures(1));
    proxy.stop();
    const std::vector<std::string> captures = sink.snapshot();
    return captures.empty() ? std::string() : captures[0];
  };
  const std::string first = run(7);
  const std::string second = run(7);
  const std::string other = run(8);
  ASSERT_EQ(first.size(), payload.size());
  EXPECT_NE(first, payload);  // something actually flipped
  EXPECT_EQ(first, second);   // identical under the same seed
  EXPECT_NE(first, other);    // and seed-sensitive
}

TEST(ChaosProxy, LatencyDelaysDelivery) {
  Backend backend("s1");
  ChaosProxy proxy(one_link("s1", backend.server->port()));
  FaultSpec slow;
  slow.mode = FaultMode::kLatency;
  slow.latency = 150ms;
  proxy.set_fault("s1", slow);
  proxy.start();
  Client client = connect_to(proxy.port("s1"));
  const Clock::time_point start = Clock::now();
  const Fields fields = parse(client.roundtrip(R"({"id":"l","op":"info"})"));
  EXPECT_EQ(field(fields, "status"), "ok");
  // 150 ms per direction: the round trip carries at least ~300 ms.
  EXPECT_GE(Clock::now() - start, 250ms);
  proxy.stop();
}

TEST(ChaosProxy, BandwidthCapsDeliveryRate) {
  CaptureSink sink;
  ChaosProxy proxy(one_link("s1", sink.port));
  FaultSpec capped;
  capped.mode = FaultMode::kBandwidth;
  capped.bytes_per_sec = 2000;
  proxy.set_fault("s1", capped);
  proxy.start();
  const std::string payload(3000, 'b');
  const Clock::time_point start = Clock::now();
  {
    Client client = connect_to(proxy.port("s1"));
    client.send_raw(payload);
    client.shutdown_write();
  }
  ASSERT_TRUE(sink.wait_captures(1));
  const auto elapsed = Clock::now() - start;
  EXPECT_EQ(sink.snapshot()[0].size(), payload.size());  // capped, not lost
  EXPECT_GE(elapsed, 1s);  // 3000 B at 2000 B/s is at least ~1.4 s
  proxy.stop();
}

TEST(ChaosProxy, TrickleDripsButDeliversIntact) {
  CaptureSink sink;
  ChaosProxy proxy(one_link("s1", sink.port));
  FaultSpec loris;
  loris.mode = FaultMode::kTrickle;
  loris.trickle_bytes = 5;
  loris.trickle_interval = 20ms;
  proxy.set_fault("s1", loris);
  proxy.start();
  const std::string payload(60, 'c');
  const Clock::time_point start = Clock::now();
  {
    Client client = connect_to(proxy.port("s1"));
    client.send_raw(payload);
    client.shutdown_write();
  }
  ASSERT_TRUE(sink.wait_captures(1));
  EXPECT_EQ(sink.snapshot()[0], payload);  // slow, never corrupted
  // 60 bytes at 5 bytes per 20 ms: ~11 intervals behind the first chunk.
  EXPECT_GE(Clock::now() - start, 150ms);
  proxy.stop();
}

TEST(ChaosProxy, BlackholeDropsBothDirectionsThenHeals) {
  Backend backend("s1");
  ChaosProxy proxy(one_link("s1", backend.server->port()));
  FaultSpec hole;
  hole.mode = FaultMode::kBlackhole;
  proxy.set_fault("s1", hole);
  proxy.start();
  {
    Client client = connect_to(proxy.port("s1"), /*recv=*/300ms);
    client.send_line(R"({"id":"b","op":"info"})");
    EXPECT_THROW((void)client.recv_line(), TimeoutError);
  }
  EXPECT_GT(proxy.link_stats("s1").dropped_bytes, 0u);
  // Heal: a NEW connection relays normally again.
  proxy.set_fault("s1", FaultSpec{});
  Client client = connect_to(proxy.port("s1"), /*recv=*/2s);
  const Fields fields = parse(client.roundtrip(R"({"id":"h","op":"info"})"));
  EXPECT_EQ(field(fields, "status"), "ok");
  proxy.stop();
}

TEST(ChaosProxy, RstHardResetsConnections) {
  Backend backend("s1");
  ChaosProxy proxy(one_link("s1", backend.server->port()));
  FaultSpec reset;
  reset.mode = FaultMode::kRst;
  proxy.set_fault("s1", reset);
  proxy.start();
  EXPECT_THROW(
      {
        Client client = connect_to(proxy.port("s1"), /*recv=*/2s);
        // The reset can land on the send or the first read.
        client.send_line(R"({"id":"r","op":"info"})");
        while (client.recv_line().has_value()) {
        }
      },
      std::system_error);
  EXPECT_GE(proxy.link_stats("s1").rsts, 1u);
  proxy.stop();
}

TEST(ChaosProxy, HalfOpenDeliversRequestDropsResponse) {
  CaptureSink sink;  // records the request; its silence is fine here
  ChaosProxy proxy(one_link("s1", sink.port));
  FaultSpec gray;
  gray.mode = FaultMode::kHalfOpen;
  proxy.set_fault("s1", gray);
  proxy.start();
  {
    Client client = connect_to(proxy.port("s1"), /*recv=*/300ms);
    client.send_line(R"({"id":"g","op":"info"})");
    client.shutdown_write();
    EXPECT_THROW((void)client.recv_line(), TimeoutError);
  }
  // The request DID reach the upstream -- that is the gray failure.
  ASSERT_TRUE(sink.wait_captures(1));
  EXPECT_NE(sink.snapshot()[0].find("\"op\":\"info\""), std::string::npos);
  proxy.stop();
}

// ---------------------------------------------------------------------------
// Router through the proxy: the hardening proofs.
// ---------------------------------------------------------------------------

/// N real backends, each behind its own chaos link, behind a Router
/// behind a front Server.  Destruction unwinds front -> router -> proxy ->
/// backends.
struct ChaosCluster {
  explicit ChaosCluster(int n, cluster::RouterConfig config) {
    ChaosProxyConfig proxy_config;
    proxy_config.seed = 42;
    for (int i = 0; i < n; ++i) {
      const std::string id = "s" + std::to_string(i + 1);
      backends.push_back(std::make_unique<Backend>(id));
      proxy_config.links.push_back(
          ChaosLinkSpec{id, Endpoint{"127.0.0.1", 0},
                        Endpoint{"127.0.0.1", backends.back()->server->port()}});
    }
    proxy = std::make_unique<ChaosProxy>(std::move(proxy_config));
    proxy->start();
    for (int i = 0; i < n; ++i) {
      const std::string id = "s" + std::to_string(i + 1);
      config.shards.push_back(
          cluster::ShardSpec{id, Endpoint{"127.0.0.1", proxy->port(id)}});
    }
    router = std::make_unique<cluster::Router>(std::move(config));
    router->start();
    ServerConfig front_config;
    front_config.listen = Endpoint{"127.0.0.1", 0};
    front = std::make_unique<Server>(*router, front_config);
    front->start();
    for (int i = 0; i < n; ++i) wait_up("s" + std::to_string(i + 1));
  }

  ~ChaosCluster() {
    front->drain();
    router->stop();
    proxy->stop();
  }

  void wait_up(const std::string& id) {
    for (int spin = 0; spin < 500; ++spin) {
      if (router->shard_up_conns(id) > 0 &&
          router->shard_health(id) == cluster::Router::ShardHealth::kUp) {
        return;
      }
      std::this_thread::sleep_for(10ms);
    }
    FAIL() << "shard " << id << " never became healthy";
  }

  std::vector<std::unique_ptr<Backend>> backends;
  std::unique_ptr<ChaosProxy> proxy;
  std::unique_ptr<cluster::Router> router;
  std::unique_ptr<Server> front;
};

cluster::RouterConfig hardened_config() {
  cluster::RouterConfig config;
  config.reconnect_min = 10ms;
  config.reconnect_max = 100ms;
  config.connect_timeout = 500ms;
  config.tick = 5ms;
  config.probe_interval = 40ms;
  config.probe_timeout = 120ms;
  config.probe_down_after = 3;
  config.pending_grace = 1'500ms;
  return config;
}

TEST(ChaosNet, RouterStaysExactlyOnceUnderEveryRegime) {
  ChaosCluster cluster(3, hardened_config());
  const std::vector<std::string> corpus = {
      R"({"op":"solve","task":"consensus","procs":2,"values":2,"timeout_ms":500})",
      R"({"op":"solve","task":"renaming","procs":2,"names":3,"timeout_ms":500})",
      R"({"op":"emulate","procs":2,"shots":1,"timeout_ms":500})",
  };
  struct Regime {
    const char* name;
    FaultSpec spec;
  };
  std::vector<Regime> regimes;
  regimes.push_back({"none", FaultSpec{}});
  {
    FaultSpec s;
    s.mode = FaultMode::kLatency;
    s.latency = 50ms;
    s.jitter = 20ms;
    regimes.push_back({"latency", s});
  }
  {
    FaultSpec s;
    s.mode = FaultMode::kCorrupt;
    s.corrupt_prob = 0.02;
    regimes.push_back({"corrupt", s});
  }
  {
    FaultSpec s;
    s.mode = FaultMode::kRst;
    regimes.push_back({"rst", s});
  }
  {
    FaultSpec s;
    s.mode = FaultMode::kBlackhole;
    regimes.push_back({"blackhole", s});
  }
  for (const Regime& regime : regimes) {
    ASSERT_TRUE(cluster.proxy->set_fault("s1", regime.spec)) << regime.name;
    LoadgenConfig config;
    config.server = Endpoint{"127.0.0.1", cluster.front->port()};
    config.connections = 2;
    config.iterations = 2;
    config.max_inflight = 8;
    const LoadgenReport report = run_loadgen(corpus, config);
    EXPECT_EQ(report.sent, 2u * 2u * corpus.size()) << regime.name;
    EXPECT_EQ(report.lost, 0u) << regime.name;
    EXPECT_EQ(report.duplicates, 0u) << regime.name;
    EXPECT_TRUE(report.exactly_once()) << regime.name;
    // Heal before the next regime so each one starts from a clean cluster.
    ASSERT_TRUE(cluster.proxy->set_fault("s1", FaultSpec{}));
    cluster.wait_up("s1");
  }
  // After the whole matrix the router's books still balance.
  Client client = connect_to(cluster.front->port(), /*recv=*/2s);
  const Fields metrics = parse(client.roundtrip(R"({"id":"m","op":"metrics"})"));
  EXPECT_EQ(field(metrics, "reconciles"), "true");
}

TEST(ChaosNet, ProbeEvictionBeatsPendingTimeoutOnBlackhole) {
  // Hedging off and a 30 s pending_timeout: without probes the parked
  // query would sit the full 30 s; with them it must re-home within a few
  // probe intervals.
  cluster::RouterConfig config = hardened_config();
  config.hedge_fraction = 0;
  config.hedge_after = 0ms;
  config.pending_timeout = 30'000ms;
  ChaosCluster cluster(2, std::move(config));

  cluster::Ring replica(64);
  replica.add("s1");
  replica.add("s2");
  const int values = consensus_values_owned_by(replica, "s1");

  FaultSpec hole;
  hole.mode = FaultMode::kBlackhole;
  ASSERT_TRUE(cluster.proxy->set_fault("s1", hole));

  Client client = connect_to(cluster.front->port(), /*recv=*/10s);
  const Clock::time_point start = Clock::now();
  const Fields fields = parse(client.roundtrip(
      R"({"id":"e","op":"solve","task":"consensus","procs":2,"values":)" +
      std::to_string(values) + "}"));
  const auto elapsed = Clock::now() - start;
  EXPECT_EQ(field(fields, "id"), "e");
  EXPECT_EQ(field(fields, "status"), "ok") << "answered by the survivor";
  EXPECT_LT(elapsed, 5s);  // a few probe intervals, nowhere near 30 s
  EXPECT_EQ(cluster.router->shard_health("s1"),
            cluster::Router::ShardHealth::kDown);
  const cluster::Router::Stats stats = cluster.router->stats();
  EXPECT_GE(stats.probe_failures, 3u);
  EXPECT_GE(stats.redispatches, 1u);
}

TEST(ChaosNet, RetryBudgetCapsRedispatchAmplification) {
  // Six queries parked on a dying shard, a budget of two retries: exactly
  // two re-dispatch to the survivor, the rest fast-fail overloaded -- and
  // every id still answers exactly once.
  auto hole = std::make_unique<BlackHole>();
  cluster::RouterConfig config;
  config.reconnect_min = 10ms;
  config.reconnect_max = 100ms;
  config.connect_timeout = 500ms;
  config.tick = 5ms;
  config.retry_budget_burst = 2;
  config.retry_budget_per_sec = 0.1;
  config.shard_retry_budget_burst = 2;
  config.shard_retry_budget_per_sec = 0.1;
  config.shards.push_back(cluster::ShardSpec{"bh", {"127.0.0.1", hole->port}});

  Backend survivor("s1");
  config.shards.push_back(cluster::ShardSpec{
      "s1", Endpoint{"127.0.0.1", survivor.server->port()}});
  cluster::Router router(std::move(config));
  router.start();
  ServerConfig front_config;
  front_config.listen = Endpoint{"127.0.0.1", 0};
  Server front(router, front_config);
  front.start();
  for (int spin = 0; spin < 500 && router.shard_up_conns("bh") == 0; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_GT(router.shard_up_conns("bh"), 0);

  cluster::Ring replica(64);
  replica.add("bh");
  replica.add("s1");
  const int values = consensus_values_owned_by(replica, "bh");

  Client client = connect_to(front.port(), /*recv=*/10s);
  std::string batch;
  const int kBatch = 6;
  for (int i = 0; i < kBatch; ++i) {
    batch += R"({"id":"k)" + std::to_string(i) +
             R"(","op":"solve","task":"consensus","procs":2,"values":)" +
             std::to_string(values) + "}\n";
  }
  client.send_raw(batch);
  std::this_thread::sleep_for(300ms);  // let the sends land on bh
  hole.reset();                        // every bh connection dies

  std::map<std::string, int> statuses;
  std::set<std::string> ids;
  for (int i = 0; i < kBatch; ++i) {
    std::optional<std::string> line = client.recv_line();
    ASSERT_TRUE(line.has_value());
    const Fields fields = parse(*line);
    ids.insert(field(fields, "id"));
    statuses[field(fields, "status")]++;
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kBatch));
  // The budget admits exactly two re-dispatches; the other four answer
  // overloaded instead of stampeding the survivor.
  EXPECT_EQ(statuses["ok"], 2) << "budget burst was 2";
  EXPECT_EQ(statuses["overloaded"], kBatch - 2);
  EXPECT_GE(router.stats().budget_exhausted, static_cast<std::uint64_t>(
                                                 kBatch - 2));
  front.drain();
  router.stop();
}

TEST(ChaosNet, HedgeCarriesRemainingDeadlineDownstream) {
  // Primary = a black hole, hedge target = a recording stub: the hedged
  // copy must carry the REMAINING client budget, not the original 1000 ms.
  BlackHole hole;
  RecordingBackend recorder;
  ServerConfig rec_config;
  rec_config.listen = Endpoint{"127.0.0.1", 0};
  Server rec_server(recorder, rec_config);
  rec_server.start();

  cluster::RouterConfig config;
  config.reconnect_min = 10ms;
  config.connect_timeout = 500ms;
  config.tick = 5ms;
  config.hedge_fraction = 0.3;
  config.shards.push_back(cluster::ShardSpec{"bh", {"127.0.0.1", hole.port}});
  config.shards.push_back(
      cluster::ShardSpec{"rec", Endpoint{"127.0.0.1", rec_server.port()}});
  cluster::Router router(std::move(config));
  router.start();
  ServerConfig front_config;
  front_config.listen = Endpoint{"127.0.0.1", 0};
  Server front(router, front_config);
  front.start();
  for (int spin = 0; spin < 500 && (router.shard_up_conns("bh") == 0 ||
                                    router.shard_up_conns("rec") == 0);
       ++spin) {
    std::this_thread::sleep_for(10ms);
  }

  cluster::Ring replica(64);
  replica.add("bh");
  replica.add("rec");
  const int values = consensus_values_owned_by(replica, "bh");

  Client client = connect_to(front.port(), /*recv=*/10s);
  const Fields fields = parse(client.roundtrip(
      R"({"id":"d","op":"solve","task":"consensus","procs":2,"values":)" +
      std::to_string(values) + R"(,"timeout_ms":1000})"));
  EXPECT_EQ(field(fields, "id"), "d");
  EXPECT_EQ(field(fields, "status"), "ok");  // the hedge won

  bool saw_rewrite = false;
  for (const std::string& line : recorder.snapshot()) {
    const Fields sent = parse(line);
    const std::string timeout = field(sent, "timeout_ms");
    if (timeout.empty()) continue;
    const int remaining = std::stoi(timeout);
    EXPECT_LT(remaining, 1000) << line;  // hedge fired ~300 ms in
    EXPECT_GT(remaining, 0) << line;
    saw_rewrite = true;
  }
  EXPECT_TRUE(saw_rewrite) << "no hedged request reached the recorder";
  EXPECT_GE(router.stats().hedge_wins, 1u);
  front.drain();
  router.stop();
}

TEST(ChaosNet, SpentDeadlineFastFailsInsteadOfRedispatching) {
  // The shard dies AFTER the client budget is spent: re-dispatching would
  // make a healthy shard burn CPU on a dead answer, so the router must
  // fast-fail deadline_exceeded instead -- long before its own
  // pending_timeout clock.
  auto hole = std::make_unique<BlackHole>();
  Backend survivor("s1");
  cluster::RouterConfig config;
  config.reconnect_min = 10ms;
  config.connect_timeout = 500ms;
  config.tick = 5ms;
  config.hedge_fraction = 0;  // nothing rescues the query early
  config.pending_grace = 5'000ms;
  config.shards.push_back(cluster::ShardSpec{"bh", {"127.0.0.1", hole->port}});
  config.shards.push_back(cluster::ShardSpec{
      "s1", Endpoint{"127.0.0.1", survivor.server->port()}});
  cluster::Router router(std::move(config));
  router.start();
  ServerConfig front_config;
  front_config.listen = Endpoint{"127.0.0.1", 0};
  Server front(router, front_config);
  front.start();
  for (int spin = 0; spin < 500 && router.shard_up_conns("bh") == 0; ++spin) {
    std::this_thread::sleep_for(10ms);
  }

  cluster::Ring replica(64);
  replica.add("bh");
  replica.add("s1");
  const int values = consensus_values_owned_by(replica, "bh");

  Client client = connect_to(front.port(), /*recv=*/10s);
  client.send_line(
      R"({"id":"x","op":"solve","task":"consensus","procs":2,"values":)" +
      std::to_string(values) + R"(,"timeout_ms":150})");
  std::this_thread::sleep_for(400ms);  // budget is now provably spent
  hole.reset();                        // conn death triggers the sweep

  const std::optional<std::string> line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  const Fields fields = parse(*line);
  EXPECT_EQ(field(fields, "id"), "x");
  EXPECT_EQ(field(fields, "status"), "deadline_exceeded");
  EXPECT_GE(router.stats().hop_deadline_expired, 1u);
  front.drain();
  router.stop();
}

}  // namespace
}  // namespace wfc::net
