// Tests for the register substrate, including multithreaded property tests
// of the atomic-snapshot and immediate-snapshot objects on real hardware.
#include <gtest/gtest.h>

#include <algorithm>
#include <barrier>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "registers/atomic_snapshot.hpp"
#include "registers/immediate_snapshot.hpp"
#include "registers/swmr_register.hpp"

namespace wfc::reg {
namespace {

TEST(SwmrRegister, UnwrittenReadsNullopt) {
  SwmrRegister<int> r;
  EXPECT_FALSE(r.read().has_value());
  std::optional<int> v;
  EXPECT_EQ(r.read_versioned(v), 0u);
  EXPECT_FALSE(v.has_value());
}

TEST(SwmrRegister, ReadAfterWrite) {
  SwmrRegister<std::string> r;
  r.write("a");
  EXPECT_EQ(r.read(), "a");
  r.write("b");
  EXPECT_EQ(r.read(), "b");
  EXPECT_EQ(r.write_count(), 2u);
}

TEST(SwmrRegister, VersionsIncrease) {
  SwmrRegister<int> r;
  std::optional<int> v;
  r.write(10);
  EXPECT_EQ(r.read_versioned(v), 1u);
  EXPECT_EQ(v, 10);
  r.write(20);
  EXPECT_EQ(r.read_versioned(v), 2u);
  EXPECT_EQ(v, 20);
}

TEST(SwmrRegister, ConcurrentReadersSeeMonotoneVersions) {
  SwmrRegister<int> r;
  constexpr int kWrites = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::atomic<int> violations{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      std::optional<int> v;
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t seq = r.read_versioned(v);
        if (seq < last) violations.fetch_add(1);
        if (seq > 0 && static_cast<std::uint64_t>(*v) != seq) {
          violations.fetch_add(1);  // value must match its version
        }
        last = seq;
      }
    });
  }
  for (int i = 1; i <= kWrites; ++i) r.write(i);
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0);
}

// ---------------------------------------------------------------------------
// Atomic snapshot.
// ---------------------------------------------------------------------------

TEST(AtomicSnapshot, SingleThreadSemantics) {
  AtomicSnapshot<int> snap(3);
  auto v0 = snap.scan();
  EXPECT_EQ(v0.size(), 3u);
  for (const auto& c : v0) EXPECT_FALSE(c.has_value());

  snap.update(1, 42);
  auto v1 = snap.scan();
  EXPECT_FALSE(v1[0].has_value());
  EXPECT_EQ(v1[1], 42);
  snap.update(1, 43);
  snap.update(0, 7);
  auto v2 = snap.scan();
  EXPECT_EQ(v2[0], 7);
  EXPECT_EQ(v2[1], 43);
  EXPECT_FALSE(v2[2].has_value());
}

TEST(AtomicSnapshot, RejectsBadIds) {
  AtomicSnapshot<int> snap(2);
  EXPECT_THROW(snap.update(-1, 0), std::invalid_argument);
  EXPECT_THROW(snap.update(2, 0), std::invalid_argument);
}

// Views of an atomic snapshot object must be totally ordered: for any two
// scans, one is componentwise <= the other (with values strictly increasing
// per writer, componentwise comparison of values is the order on views).
bool views_comparable(const std::vector<int>& a, const std::vector<int>& b) {
  bool a_le_b = true, b_le_a = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) a_le_b = false;
    if (b[i] > a[i]) b_le_a = false;
  }
  return a_le_b || b_le_a;
}

TEST(AtomicSnapshot, ConcurrentScansTotallyOrdered) {
  constexpr int kProcs = 4;
  constexpr int kOpsPerProc = 400;
  AtomicSnapshot<int> snap(kProcs);
  std::vector<std::vector<std::vector<int>>> scans(kProcs);
  std::barrier sync(kProcs);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      sync.arrive_and_wait();
      for (int op = 1; op <= kOpsPerProc; ++op) {
        snap.update(p, op);
        auto view = snap.scan();
        std::vector<int> flat(kProcs, 0);
        for (int j = 0; j < kProcs; ++j) {
          if (view[static_cast<std::size_t>(j)].has_value()) {
            flat[static_cast<std::size_t>(j)] =
                *view[static_cast<std::size_t>(j)];
          }
        }
        scans[static_cast<std::size_t>(p)].push_back(std::move(flat));
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::vector<int>> all;
  for (auto& per : scans) {
    for (auto& v : per) all.push_back(std::move(v));
  }
  // Pairwise comparability is O(m^2) but m = 1600.
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      ASSERT_TRUE(views_comparable(all[i], all[j]))
          << "scans " << i << " and " << j << " are incomparable";
    }
  }
}

TEST(AtomicSnapshot, ScansSeeOwnPrecedingUpdate) {
  constexpr int kProcs = 4;
  AtomicSnapshot<int> snap(kProcs);
  std::barrier sync(kProcs);
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      sync.arrive_and_wait();
      for (int op = 1; op <= 300; ++op) {
        snap.update(p, op);
        auto view = snap.scan();
        const auto& own = view[static_cast<std::size_t>(p)];
        // Regularity: the scan follows our update, so it must reflect it
        // (only this thread writes component p).
        if (!own.has_value() || *own != op) violations.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(AtomicSnapshot, SoloScanUsesTwoCollects) {
  AtomicSnapshot<int> snap(4);
  snap.update(0, 1);
  int collects = 0;
  (void)snap.scan_counting(collects);
  EXPECT_EQ(collects, 2);  // one clean double collect, nobody moving
}

TEST(AtomicSnapshot, ScanCollectBoundUnderContention) {
  // Wait-freedom bound: with n writers, a scan needs at most n+2 collects
  // (after n+2 unsuccessful double collects some writer moved twice and its
  // embedded scan is borrowed).
  constexpr int kProcs = 4;
  AtomicSnapshot<int> snap(kProcs);
  std::atomic<int> worst{0};
  std::barrier sync(kProcs);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      sync.arrive_and_wait();
      for (int op = 1; op <= 500; ++op) {
        snap.update(p, op);
        int collects = 0;
        (void)snap.scan_counting(collects);
        int cur = worst.load();
        while (collects > cur && !worst.compare_exchange_weak(cur, collects)) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(worst.load(), kProcs + 2);
  EXPECT_GE(worst.load(), 2);
}

// ---------------------------------------------------------------------------
// Immediate snapshot: the three §3.5 properties under real concurrency.
// ---------------------------------------------------------------------------

using Output = ImmediateSnapshot<int>::Output;

void expect_immediate_snapshot_properties(const std::vector<Output>& outs) {
  const int n = static_cast<int>(outs.size());
  auto contains = [](const Output& s, int id) {
    return std::any_of(s.begin(), s.end(),
                       [id](const auto& p) { return p.first == id; });
  };
  auto subset = [&](const Output& a, const Output& b) {
    return std::all_of(a.begin(), a.end(),
                       [&](const auto& p) { return contains(b, p.first); });
  };
  for (int i = 0; i < n; ++i) {
    // (1) self-inclusion
    EXPECT_TRUE(contains(outs[static_cast<std::size_t>(i)], i))
        << "S_" << i << " missing its own value";
    for (int j = 0; j < n; ++j) {
      const auto& si = outs[static_cast<std::size_t>(i)];
      const auto& sj = outs[static_cast<std::size_t>(j)];
      // (2) containment
      EXPECT_TRUE(subset(si, sj) || subset(sj, si))
          << "S_" << i << " and S_" << j << " incomparable";
      // (3) immediacy
      if (contains(sj, i)) {
        EXPECT_TRUE(subset(si, sj))
            << "immediacy violated for i=" << i << " j=" << j;
      }
    }
  }
}

TEST(ImmediateSnapshot, SoloRun) {
  ImmediateSnapshot<int> is(3);
  Output out = is.write_read(1, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::pair<int, int>{1, 10}));
}

TEST(ImmediateSnapshot, SequentialRuns) {
  ImmediateSnapshot<int> is(3);
  Output a = is.write_read(0, 100);
  Output b = is.write_read(2, 102);
  Output c = is.write_read(1, 101);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(c.size(), 3u);
  expect_immediate_snapshot_properties({a, c, b});
}

TEST(ImmediateSnapshot, OneShotEnforced) {
  ImmediateSnapshot<int> is(2);
  is.write_read(0, 1);
  EXPECT_THROW(is.write_read(0, 2), std::invalid_argument);
}

TEST(ImmediateSnapshot, PropertiesUnderConcurrency) {
  constexpr int kProcs = 6;
  for (int round = 0; round < 200; ++round) {
    ImmediateSnapshot<int> is(kProcs);
    std::vector<Output> outs(kProcs);
    std::barrier sync(kProcs);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProcs; ++p) {
      threads.emplace_back([&, p] {
        sync.arrive_and_wait();
        outs[static_cast<std::size_t>(p)] = is.write_read(p, 1000 + p);
      });
    }
    for (auto& t : threads) t.join();
    expect_immediate_snapshot_properties(outs);
  }
}

TEST(ImmediateSnapshot, ValuesAreFaithful) {
  constexpr int kProcs = 4;
  ImmediateSnapshot<int> is(kProcs);
  std::vector<Output> outs(kProcs);
  std::barrier sync(kProcs);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      sync.arrive_and_wait();
      outs[static_cast<std::size_t>(p)] = is.write_read(p, 7 * p + 1);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& out : outs) {
    for (const auto& [id, val] : out) EXPECT_EQ(val, 7 * id + 1);
  }
}

// ---------------------------------------------------------------------------
// Iterated memory.
// ---------------------------------------------------------------------------

TEST(IteratedMemory, CapacityEnforced) {
  IteratedMemory<int> mem(2, 3);
  EXPECT_EQ(mem.capacity(), 3u);
  mem.write_read(0, 0, 5);
  EXPECT_THROW(mem.write_read(3, 0, 5), std::invalid_argument);
}

TEST(IteratedMemory, FullInformationRoundsSatisfyProperties) {
  // Run b rounds of the IIS full-information protocol on real threads and
  // check every memory's outputs satisfy the immediate-snapshot properties.
  constexpr int kProcs = 4;
  constexpr std::size_t kRounds = 5;
  for (int trial = 0; trial < 50; ++trial) {
    IteratedMemory<int> mem(kProcs, kRounds);
    std::vector<std::vector<Output>> per_round(
        kRounds, std::vector<Output>(kProcs));
    std::barrier sync(kProcs);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProcs; ++p) {
      threads.emplace_back([&, p] {
        sync.arrive_and_wait();
        int carried = p;
        for (std::size_t r = 0; r < kRounds; ++r) {
          Output out = mem.write_read(r, p, carried);
          per_round[r][static_cast<std::size_t>(p)] = out;
          carried = static_cast<int>(out.size());  // any function of the view
        }
      });
    }
    for (auto& t : threads) t.join();
    for (std::size_t r = 0; r < kRounds; ++r) {
      expect_immediate_snapshot_properties(per_round[r]);
    }
  }
}

}  // namespace
}  // namespace wfc::reg
