// Persistence of solved decision maps, plus additional BG / resilience /
// geometry property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "bg/simulation.hpp"
#include "core/wfc.hpp"
#include "tasks/map_io.hpp"

namespace wfc {
namespace {

// ---------------------------------------------------------------------------
// Decision map round-trips.
// ---------------------------------------------------------------------------

TEST(MapIo, RoundTripSimplexAgreement) {
  auto target = topo::standard_chromatic_subdivision(topo::base_simplex(3));
  task::SimplexAgreementTask t(3, target);
  task::SolveResult solved = task::solve(t, 1);
  ASSERT_EQ(solved.status, task::Solvability::kSolvable);
  const std::string text = task::solve_result_to_text(t, solved);

  task::SolveResult reloaded = task::solve_result_from_text(text, t);
  EXPECT_EQ(reloaded.level, solved.level);
  EXPECT_EQ(reloaded.decision, solved.decision);
  // The reloaded witness runs.
  task::DecisionProtocol proto(t, std::move(reloaded));
  EXPECT_EQ(proto.validate_exhaustively({0, 1, 2}), 13u);
}

TEST(MapIo, RoundTripApproxAgreement) {
  task::ApproxAgreementTask t(2, 9);
  task::SolveResult solved = task::solve(t, 2);
  ASSERT_EQ(solved.status, task::Solvability::kSolvable);
  task::SolveResult reloaded =
      task::solve_result_from_text(task::solve_result_to_text(t, solved), t);
  EXPECT_EQ(reloaded.decision, solved.decision);
}

TEST(MapIo, RejectsWrongTask) {
  auto target = topo::standard_chromatic_subdivision(topo::base_simplex(3));
  task::SimplexAgreementTask right(3, target);
  task::SolveResult solved = task::solve(right, 1);
  ASSERT_EQ(solved.status, task::Solvability::kSolvable);
  const std::string text = task::solve_result_to_text(right, solved);

  task::KSetConsensusTask wrong(3, 3);
  EXPECT_THROW((void)task::solve_result_from_text(text, wrong),
               std::invalid_argument);
}

TEST(MapIo, RejectsTamperedDecision) {
  auto target = topo::standard_chromatic_subdivision(topo::base_simplex(3));
  task::SimplexAgreementTask t(3, target);
  task::SolveResult solved = task::solve(t, 1);
  ASSERT_EQ(solved.status, task::Solvability::kSolvable);
  std::string text = task::solve_result_to_text(t, solved);
  // Truncate the decision vector: size mismatch must be caught.
  text.erase(text.rfind(' '));
  EXPECT_THROW((void)task::solve_result_from_text(text, t),
               std::invalid_argument);
}

TEST(MapIo, RejectsGarbage) {
  task::KSetConsensusTask t(2, 2);
  EXPECT_THROW((void)task::solve_result_from_text("nope", t),
               std::invalid_argument);
}

TEST(MapIo, FingerprintSensitivity) {
  auto a = topo::base_simplex(3);
  auto b = topo::base_simplex(4);
  EXPECT_NE(task::complex_fingerprint(a), task::complex_fingerprint(b));
  EXPECT_EQ(task::complex_fingerprint(a),
            task::complex_fingerprint(topo::base_simplex(3)));
}

// ---------------------------------------------------------------------------
// Geometry: mesh diameters.
// ---------------------------------------------------------------------------

TEST(Mesh, BaseSimplexDiameter) {
  // Unit barycentric corners are sqrt(2) apart.
  EXPECT_NEAR(topo::mesh_diameter(topo::base_simplex(3)), std::sqrt(2.0),
              1e-12);
}

TEST(Mesh, SubdivisionShrinks) {
  topo::ChromaticComplex base = topo::base_simplex(3);
  double prev = topo::mesh_diameter(base);
  for (int b = 1; b <= 3; ++b) {
    const double cur = topo::mesh_diameter(topo::iterated_sds(base, b));
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Mesh, EdgeSdsHalvesExactly) {
  topo::ChromaticComplex base = topo::base_simplex(2);
  const double m0 = topo::mesh_diameter(base);
  const double m1 =
      topo::mesh_diameter(topo::standard_chromatic_subdivision(base));
  EXPECT_NEAR(m1 / m0, 0.5, 1e-12);
}

// ---------------------------------------------------------------------------
// BG property sweep.
// ---------------------------------------------------------------------------

class BgGrid : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BgGrid, CrashFreeLegalAndComplete) {
  const auto [sims, simulated, rounds] = GetParam();
  bg::BgConfig config;
  config.n_simulators = sims;
  config.n_simulated = simulated;
  config.rounds = rounds;
  bg::BgOutcome out = run_bg_simulation(config);
  EXPECT_EQ(out.blocked, 0);
  EXPECT_TRUE(out.legal());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BgGrid,
    ::testing::Values(std::tuple{1, 2, 2}, std::tuple{2, 2, 2},
                      std::tuple{2, 4, 2}, std::tuple{3, 3, 3},
                      std::tuple{4, 2, 2}, std::tuple{2, 5, 1}),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Resilience frontier sweep: k-set consensus tolerates exactly k-1 failures.
// ---------------------------------------------------------------------------

class SetConsensusFrontier
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SetConsensusFrontier, SolvableIffKExceedsT) {
  // Projections up to 3 processors: every cell decidable by search within
  // milliseconds.  Deeper UNSAT cells (t+1 >= 4, k = t) are the
  // Sperner-hard instances; E8 carries those for all levels.
  const auto [k, t] = GetParam();
  const int procs = 3;
  task::ResilienceVerdict v = task::decide_t_resilient(
      task::colorless_set_consensus(k, procs), procs, t, 1);
  if (k >= t + 1) {
    EXPECT_EQ(v.status, task::Solvability::kSolvable);
  } else {
    EXPECT_EQ(v.status, task::Solvability::kUnsolvable);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SetConsensusFrontier,
    ::testing::Values(std::tuple{1, 0}, std::tuple{1, 1}, std::tuple{1, 2},
                      std::tuple{2, 1}, std::tuple{2, 2}, std::tuple{3, 2}),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace wfc
