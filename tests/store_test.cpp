// store::ChainStore -- the persistent content-addressed chain store -- and
// its integration with svc::SdsCache.
//
// The robustness contract under test: the store NEVER crashes the process
// and NEVER serves a bad chain.  Truncated, corrupted, and version-skewed
// files all count a fallback and behave as a miss (callers rebuild in
// memory).  The warm-start contract: a second process (or a restart) over
// the same --store-dir answers from the mmap with ZERO chain builds --
// chain_builds == misses + extensions == 0 is exactly what the store-smoke
// CI job asserts.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "protocol/sds_chain.hpp"
#include "service/sds_cache.hpp"
#include "store/chain_store.hpp"
#include "topology/complex.hpp"
#include "topology/hash.hpp"

namespace wfc::store {
namespace {

/// Fresh temp directory per test; removed on scope exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/wfc_store_test_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

proto::SdsChain make_chain(int procs, int depth) {
  return proto::SdsChain(topo::base_simplex(procs), depth);
}

std::uint64_t fp_of(int procs) {
  return topo::complex_fingerprint(topo::base_simplex(procs));
}

TEST(ChainStore, PublishThenLoadRoundTrips) {
  TempDir dir;
  ChainStore store({.dir = dir.path});
  ASSERT_TRUE(store.enabled());
  const proto::SdsChain chain = make_chain(2, 2);
  const std::uint64_t fp = fp_of(2);
  ASSERT_TRUE(store.publish(fp, chain));

  const auto loaded = store.load(fp);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->depth(), 2);
  for (int r = 0; r <= 2; ++r) {
    EXPECT_EQ(topo::complex_fingerprint(loaded->level(r)),
              topo::complex_fingerprint(chain.level(r)))
        << "level " << r;
  }
  const StoreStats s = store.stats();
  EXPECT_EQ(s.publishes, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.fallbacks, 0u);
  EXPECT_EQ(s.files, 1u);
  EXPECT_GT(s.file_bytes, 0u);
}

TEST(ChainStore, MissingFingerprintIsAMiss) {
  TempDir dir;
  ChainStore store({.dir = dir.path});
  EXPECT_EQ(store.load(0xdeadbeefull), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().fallbacks, 0u);
}

TEST(ChainStore, ShallowerPublishIsSkippedDeeperReplaces) {
  TempDir dir;
  ChainStore store({.dir = dir.path});
  const std::uint64_t fp = fp_of(2);
  ASSERT_TRUE(store.publish(fp, make_chain(2, 2)));
  EXPECT_FALSE(store.publish(fp, make_chain(2, 1)));  // shallower: no-op
  EXPECT_EQ(store.stats().publish_skipped, 1u);
  EXPECT_TRUE(store.publish(fp, make_chain(2, 3)));  // deeper: replaces
  const auto loaded = store.load(fp);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->depth(), 3);
}

TEST(ChainStore, TruncatedFileFallsBackNeverServes) {
  TempDir dir;
  ChainStore store({.dir = dir.path});
  const std::uint64_t fp = fp_of(2);
  ASSERT_TRUE(store.publish(fp, make_chain(2, 2)));
  const std::string path = store.file_path(fp);

  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  for (const off_t cut : {st.st_size / 2, off_t{16}, off_t{0}}) {
    ASSERT_EQ(::truncate(path.c_str(), cut), 0);
    EXPECT_EQ(store.load(fp), nullptr) << "cut=" << cut;
  }
  EXPECT_EQ(store.stats().fallbacks, 3u);
  EXPECT_EQ(store.stats().hits, 0u);
}

TEST(ChainStore, CorruptedPayloadFailsChecksum) {
  TempDir dir;
  ChainStore store({.dir = dir.path});
  const std::uint64_t fp = fp_of(2);
  ASSERT_TRUE(store.publish(fp, make_chain(2, 2)));
  const std::string path = store.file_path(fp);

  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(st.st_size - 5);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(st.st_size - 5);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  EXPECT_EQ(store.load(fp), nullptr);
  EXPECT_GE(store.stats().fallbacks, 1u);
}

TEST(ChainStore, VersionSkewFallsBack) {
  TempDir dir;
  ChainStore store({.dir = dir.path});
  const std::uint64_t fp = fp_of(2);
  ASSERT_TRUE(store.publish(fp, make_chain(2, 1)));
  const std::string path = store.file_path(fp);
  {
    // version is the u32 right after the 8-byte magic.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const std::uint32_t future = kStoreVersion + 7;
    f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  }
  EXPECT_EQ(store.load(fp), nullptr);
  EXPECT_GE(store.stats().fallbacks, 1u);
}

TEST(ChainStore, ReadonlyNeverPublishes) {
  TempDir dir;
  {
    ChainStore writer({.dir = dir.path});
    ASSERT_TRUE(writer.publish(fp_of(2), make_chain(2, 1)));
  }
  ChainStore ro({.dir = dir.path, .readonly = true});
  ASSERT_TRUE(ro.enabled());
  EXPECT_FALSE(ro.publish(fp_of(3), make_chain(3, 1)));
  EXPECT_EQ(ro.stats().publish_skipped, 1u);
  EXPECT_NE(ro.load(fp_of(2)), nullptr);  // reads still served
}

TEST(ChainStore, ReadonlyOverMissingDirIsDisabledNotFatal) {
  ChainStore ro({.dir = "/nonexistent/wfc-store", .readonly = true});
  EXPECT_FALSE(ro.enabled());
  EXPECT_EQ(ro.load(fp_of(2)), nullptr);
  EXPECT_FALSE(ro.publish(fp_of(2), make_chain(2, 1)));
}

TEST(ChainStore, ByteBudgetSkipsOversizedPublishes) {
  TempDir dir;
  ChainStore store({.dir = dir.path, .max_bytes = 64});  // < any chain file
  EXPECT_FALSE(store.publish(fp_of(2), make_chain(2, 1)));
  EXPECT_EQ(store.stats().publish_skipped, 1u);
  EXPECT_EQ(store.stats().publishes, 0u);
  EXPECT_TRUE(store.list().empty());
}

// The headline contract: a second PROCESS over the same store directory,
// read-only, serves the tower from the shared mapping without building
// anything.  Forked child + _exit keeps this ASan-clean.
TEST(ChainStore, SecondProcessStartsWarmReadonly) {
  TempDir dir;
  {
    ChainStore writer({.dir = dir.path});
    ASSERT_TRUE(writer.publish(fp_of(2), make_chain(2, 2)));
  }
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: read-only open, full verification, zero builds.  Any failure
    // exits non-zero; gtest macros are unusable post-fork, so check by
    // hand.
    int rc = 0;
    {
      ChainStore ro({.dir = dir.path, .readonly = true});
      const auto chain = ro.load(fp_of(2));
      const proto::SdsChain fresh = make_chain(2, 2);
      if (chain == nullptr || chain->depth() != 2) {
        rc = 1;
      } else {
        for (int r = 0; r <= 2 && rc == 0; ++r) {
          if (topo::complex_fingerprint(chain->level(r)) !=
              topo::complex_fingerprint(fresh.level(r))) {
            rc = 2;
          }
        }
        if (rc == 0 && ro.stats().hits != 1) rc = 3;
        if (rc == 0 && ro.stats().fallbacks != 0) rc = 4;
      }
    }
    ::_exit(rc);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child verification failed";
}

}  // namespace
}  // namespace wfc::store

namespace wfc::svc {
namespace {

using store::ChainStore;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/wfc_store_cache_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

SdsCache::Options with_store(const std::string& dir, bool readonly = false) {
  SdsCache::Options options;
  options.store.dir = dir;
  options.store.readonly = readonly;
  return options;
}

TEST(SdsCacheStore, RestartServesFromStoreWithZeroChainBuilds) {
  TempDir dir;
  const topo::ChromaticComplex input = topo::base_simplex(2);

  {
    SdsCache cold(with_store(dir.path));
    bool built = false;
    cold.chain_for(input, 2, &built);
    EXPECT_TRUE(built);
    EXPECT_EQ(cold.stats().chain_builds(), 1u);
    EXPECT_EQ(cold.store_stats().publishes, 1u);
  }

  // "Restart": a fresh cache over the same directory.
  SdsCache warm(with_store(dir.path));
  bool built = true;
  const auto chain = warm.chain_for(input, 2, &built);
  EXPECT_FALSE(built);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->depth(), 2);
  const CacheStats cs = warm.stats();
  EXPECT_EQ(cs.chain_builds(), 0u) << "warm restart must not build";
  EXPECT_EQ(cs.misses, 0u);
  EXPECT_EQ(cs.extensions, 0u);
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.store_hits, 1u);
}

TEST(SdsCacheStore, DeeperRequestExtendsStoredChainAndRepublishes) {
  TempDir dir;
  const topo::ChromaticComplex input = topo::base_simplex(2);
  {
    SdsCache cold(with_store(dir.path));
    cold.chain_for(input, 1);
  }
  SdsCache warm(with_store(dir.path));
  bool built = false;
  const auto chain = warm.chain_for(input, 2, &built);
  EXPECT_TRUE(built);  // extension beyond the stored depth is real work
  EXPECT_EQ(chain->depth(), 2);
  const CacheStats cs = warm.stats();
  EXPECT_EQ(cs.misses, 0u);
  EXPECT_EQ(cs.extensions, 1u);
  EXPECT_EQ(cs.store_hits, 1u);
  // The deepened tower went back to disk: a third cache starts fully warm.
  SdsCache third(with_store(dir.path));
  bool built3 = true;
  third.chain_for(input, 2, &built3);
  EXPECT_FALSE(built3);
  EXPECT_EQ(third.stats().chain_builds(), 0u);
}

TEST(SdsCacheStore, WarmAdmitsEveryStoredChain) {
  TempDir dir;
  {
    SdsCache cold(with_store(dir.path));
    cold.chain_for(topo::base_simplex(2), 2);
    cold.chain_for(topo::base_simplex(3), 1);
  }
  SdsCache warm(with_store(dir.path));
  EXPECT_EQ(warm.warm(), 2u);
  const CacheStats cs = warm.stats();
  EXPECT_EQ(cs.entries, 2u);
  EXPECT_EQ(cs.store_hits, 2u);
  EXPECT_GT(cs.resident_vertices, 0u);
  bool built = true;
  warm.chain_for(topo::base_simplex(2), 2, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(warm.stats().chain_builds(), 0u);
}

TEST(SdsCacheStore, PinUnpinLifecycle) {
  TempDir dir;
  SdsCache cache(with_store(dir.path));
  const topo::ChromaticComplex input = topo::base_simplex(2);
  const std::uint64_t fp = topo::complex_fingerprint(input);

  EXPECT_FALSE(cache.pin(fp));  // nothing resident yet
  cache.chain_for(input, 1);
  EXPECT_TRUE(cache.pin(fp));
  EXPECT_FALSE(cache.pin(fp));  // double pin refused
  EXPECT_EQ(cache.stats().pinned, 1u);
  EXPECT_TRUE(cache.unpin(fp));
  EXPECT_FALSE(cache.unpin(fp));
  EXPECT_EQ(cache.stats().pinned, 0u);
}

TEST(SdsCacheStore, CorruptStoreFallsBackToInMemoryBuild) {
  TempDir dir;
  const topo::ChromaticComplex input = topo::base_simplex(2);
  std::string file;
  {
    SdsCache cold(with_store(dir.path));
    cold.chain_for(input, 2);
    file = cold.store()->file_path(topo::complex_fingerprint(input));
  }
  ASSERT_EQ(::truncate(file.c_str(), 32), 0);

  SdsCache warm(with_store(dir.path));
  bool built = false;
  const auto chain = warm.chain_for(input, 2, &built);
  EXPECT_TRUE(built);  // fallback rebuilt; never served the bad file
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->depth(), 2);
  EXPECT_EQ(warm.store_stats().fallbacks, 1u);
  EXPECT_EQ(warm.stats().store_hits, 0u);
}

}  // namespace
}  // namespace wfc::svc
