// Tests for the wfc::net serving layer: loopback round-trips for every
// protocol op, pipelined out-of-order completion matched on the "id" echo,
// slow-reader and inflight backpressure, oversized / CRLF / mid-line-EOF
// framing edges, idle timeouts, graceful drain, the blocking client, the
// load generator's exactly-once accounting, and a multi-connection storm
// (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/jsonl.hpp"
#include "service/query_service.hpp"

namespace wfc::net {
namespace {

using Fields = std::map<std::string, std::string>;

svc::QueryService::Options service_options(int workers = 4) {
  svc::QueryService::Options options;
  options.workers = workers;
  options.obs.enabled = true;
  return options;
}

/// A QueryService plus a started Server on an ephemeral loopback port.
/// Declaration order destroys the Server first, as the contract requires.
struct TestServer {
  explicit TestServer(ServerConfig config = {},
                      svc::QueryService::Options options = service_options())
      : service(std::move(options)), server(service, std::move(config)) {
    server.start();
  }

  [[nodiscard]] Client connect() const {
    return Client(ClientConfig{Endpoint{"127.0.0.1", server.port()}});
  }

  svc::QueryService service;
  Server server;
};

Fields parse(const std::string& line) { return svc::parse_flat_json(line); }

std::string field(const Fields& fields, const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

// ---------------------------------------------------------------------------
// Endpoint parsing.
// ---------------------------------------------------------------------------

TEST(ParseEndpoint, HostPortAndDefaults) {
  const Endpoint a = parse_endpoint("127.0.0.1:7411");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 7411);
  const Endpoint b = parse_endpoint(":0");
  EXPECT_EQ(b.host, "127.0.0.1");
  EXPECT_EQ(b.port, 0);
  EXPECT_THROW(parse_endpoint("no-port"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:notanumber"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:99999"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Loopback round-trips: every op of the protocol over real TCP.
// ---------------------------------------------------------------------------

TEST(NetServer, RoundTripsEveryOp) {
  TestServer ts;
  Client client = ts.connect();

  // solve: the Prop 3.1 characterization.
  Fields solve = parse(client.roundtrip(
      R"({"id":"s1","op":"solve","task":"consensus","procs":2,"values":2})"));
  EXPECT_EQ(field(solve, "id"), "s1");
  EXPECT_EQ(field(solve, "status"), "ok");
  EXPECT_EQ(field(solve, "verdict"), "UNSOLVABLE");

  // convergence: the §5 compilation.
  Fields conv = parse(client.roundtrip(
      R"({"id":"c1","op":"convergence","procs":2,"depth":1,"max_level":4})"));
  EXPECT_EQ(field(conv, "id"), "c1");
  EXPECT_EQ(field(conv, "status"), "ok");

  // emulate: the §4 Figure 2 emulation.
  Fields emu = parse(client.roundtrip(
      R"({"id":"e1","op":"emulate","procs":2,"shots":1})"));
  EXPECT_EQ(field(emu, "id"), "e1");
  EXPECT_EQ(field(emu, "status"), "ok");
  EXPECT_EQ(field(emu, "verdict"), "OK");

  // check: a bounded wfc::chk sweep.
  Fields check = parse(client.roundtrip(
      R"({"id":"k1","op":"check","target":"linearizability","procs":2,)"
      R"("rounds":1})"));
  EXPECT_EQ(field(check, "id"), "k1");
  EXPECT_EQ(field(check, "status"), "ok");
  EXPECT_EQ(field(check, "verdict"), "OK");

  // stats: the raw one-line service counters (not a JSON envelope, same as
  // the stdin transport).
  const std::string stats = client.roundtrip(R"({"op":"stats"})");
  EXPECT_NE(stats.find("submitted="), std::string::npos);

  // metrics: counters must reconcile once everything above is terminal.
  Fields metrics = parse(client.roundtrip(R"({"id":"m1","op":"metrics"})"));
  EXPECT_EQ(field(metrics, "id"), "m1");
  EXPECT_EQ(field(metrics, "status"), "ok");
  EXPECT_EQ(field(metrics, "reconciles"), "true");

  // trace: requires a filesystem "path", which the TCP transport rejects --
  // a remote client must not be able to write server-side files.  The
  // connection survives the refusal.
  const std::string trace_path = "net_test_trace.json";
  Fields trace = parse(client.roundtrip(
      R"({"id":"t1","op":"trace","path":")" + trace_path + R"("})"));
  EXPECT_EQ(field(trace, "id"), "t1");
  EXPECT_EQ(field(trace, "status"), "invalid_argument");
  EXPECT_FALSE(std::ifstream(trace_path).good());

  // Unknown ops answer an error record and keep the connection alive.
  Fields unknown = parse(client.roundtrip(R"({"id":"x1","op":"frobnicate"})"));
  EXPECT_EQ(field(unknown, "id"), "x1");
  EXPECT_EQ(field(unknown, "status"), "invalid_argument");
  Fields after = parse(client.roundtrip(
      R"({"id":"s2","op":"solve","task":"consensus","procs":2,"values":2})"));
  EXPECT_EQ(field(after, "status"), "ok");

  const Server::Stats wire = ts.server.stats();
  EXPECT_EQ(wire.accepted, 1u);
  EXPECT_GT(wire.bytes_read, 0u);
  EXPECT_GT(wire.bytes_written, 0u);
}

// Path-bearing control ops are a remote file-write primitive, so the TCP
// transport refuses them (the stdin front-end, an operator's own shell,
// still allows them).
TEST(NetServer, ControlPathOpsAreRejectedOverTcp) {
  TestServer ts;
  Client client = ts.connect();
  const std::string path = "net_test_should_not_exist.prom";
  Fields metrics = parse(client.roundtrip(
      R"({"id":"m","op":"metrics","path":")" + path + R"("})"));
  EXPECT_EQ(field(metrics, "id"), "m");
  EXPECT_EQ(field(metrics, "status"), "invalid_argument");
  EXPECT_FALSE(std::ifstream(path).good());
  // Path-free metrics still answers on the same connection.
  Fields ok = parse(client.roundtrip(R"({"id":"m2","op":"metrics"})"));
  EXPECT_EQ(field(ok, "status"), "ok");
}

// Iterated-SDS towers grow exponentially with "depth" and are built on the
// io thread, so the handler caps the field at parse time.
TEST(NetServer, DepthOverTheCapIsRejected) {
  TestServer ts;
  Client client = ts.connect();
  Fields deep = parse(client.roundtrip(
      R"({"id":"d","op":"convergence","procs":2,"depth":64})"));
  EXPECT_EQ(field(deep, "id"), "d");
  EXPECT_EQ(field(deep, "status"), "invalid_argument");
  Fields ok = parse(client.roundtrip(
      R"({"id":"d2","op":"convergence","procs":2,"depth":1,"max_level":4})"));
  EXPECT_EQ(field(ok, "status"), "ok");
}

// ---------------------------------------------------------------------------
// Pipelining: responses complete out of order and match on the id echo.
// ---------------------------------------------------------------------------

TEST(NetServer, PipelinedResponsesCompleteOutOfOrder) {
  TestServer ts;
  Client client = ts.connect();
  // Warm the result memo so the fast query completes inline at parse time.
  client.roundtrip(
      R"({"id":"warm","op":"solve","task":"consensus","procs":2,"values":2})");

  // A rounds=3 check sweep takes tens of milliseconds on a worker; the
  // memo hit answers in microseconds on the io thread, so "fast" overtakes
  // "slow" with a wide margin (rounds=2 was only ~1 ms and lost the race
  // on loaded machines).  One write carries both lines, so the server
  // parses them back to back.
  client.send_line(
      R"({"id":"slow","op":"check","target":"sds","procs":3,"rounds":3,)"
      R"("crashes":1})"
      "\n"
      R"({"id":"fast","op":"solve","task":"consensus","procs":2,"values":2})");

  std::optional<std::string> first = client.recv_line();
  std::optional<std::string> second = client.recv_line();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(field(parse(*first), "id"), "fast");
  EXPECT_EQ(field(parse(*second), "id"), "slow");
  EXPECT_EQ(field(parse(*second), "status"), "ok");
}

TEST(NetServer, PipelinedBatchAnswersEveryId) {
  TestServer ts;
  Client client = ts.connect();
  const int kBatch = 64;
  for (int i = 0; i < kBatch; ++i) {
    client.send_line(R"({"id":"b)" + std::to_string(i) +
                     R"(","op":"solve","task":"consensus","procs":2,)"
                     R"("values":2})");
  }
  std::set<std::string> seen;
  for (int i = 0; i < kBatch; ++i) {
    std::optional<std::string> line = client.recv_line();
    ASSERT_TRUE(line.has_value());
    const Fields fields = parse(*line);
    EXPECT_EQ(field(fields, "status"), "ok");
    EXPECT_TRUE(seen.insert(field(fields, "id")).second);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kBatch));
}

// ---------------------------------------------------------------------------
// Backpressure: a slow reader with a tiny write buffer and inflight cap
// still gets every response exactly once -- reading just pauses.
// ---------------------------------------------------------------------------

TEST(NetServer, SlowReaderWithTinyBuffersGetsEveryResponse) {
  ServerConfig config;
  config.max_inflight_per_conn = 4;
  config.max_write_buffer = 512;
  TestServer ts(std::move(config));
  Client client = ts.connect();

  const int kBatch = 128;
  for (int i = 0; i < kBatch; ++i) {
    client.send_line(R"({"id":"q)" + std::to_string(i) +
                     R"(","op":"solve","task":"consensus","procs":2,)"
                     R"("values":2})");
  }
  // Responses (~130 bytes each) exceed the 512-byte write buffer many
  // times over; do not read until everything is sent.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::set<std::string> seen;
  for (int i = 0; i < kBatch; ++i) {
    std::optional<std::string> line = client.recv_line();
    ASSERT_TRUE(line.has_value()) << "response " << i;
    EXPECT_TRUE(seen.insert(field(parse(*line), "id")).second);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kBatch));
}

// ---------------------------------------------------------------------------
// Framing edges.
// ---------------------------------------------------------------------------

TEST(NetServer, OversizedLineAnswersErrorAndConnectionSurvives) {
  ServerConfig config;
  config.handler.max_line_bytes = 256;
  TestServer ts(std::move(config));
  Client client = ts.connect();

  Fields oversized =
      parse(client.roundtrip(std::string(1024, 'x')));
  EXPECT_EQ(field(oversized, "status"), "invalid_argument");

  Fields after = parse(client.roundtrip(
      R"({"id":"ok","op":"solve","task":"consensus","procs":2,"values":2})"));
  EXPECT_EQ(field(after, "id"), "ok");
  EXPECT_EQ(field(after, "status"), "ok");
  EXPECT_EQ(ts.server.stats().oversized_lines, 1u);
}

TEST(NetServer, CrlfCommentsAndBlanksAreTolerated) {
  TestServer ts;
  Client client = ts.connect();
  // Blank lines and comments produce no response; CRLF line endings are
  // stripped before parsing.  The stats control op is gated on the
  // connection's inflight count, so the solve answers first.
  client.send_line("");
  client.send_line("# a comment\r");
  client.send_line(
      "{\"id\":\"crlf\",\"op\":\"solve\",\"task\":\"consensus\","
      "\"procs\":2,\"values\":2}\r");
  client.send_line(R"({"op":"stats"})");
  std::optional<std::string> first = client.recv_line();
  std::optional<std::string> second = client.recv_line();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(field(parse(*first), "id"), "crlf");
  EXPECT_EQ(field(parse(*first), "status"), "ok");
  EXPECT_NE(second->find("submitted="), std::string::npos);
}

TEST(NetServer, MidLineEofProcessesTheFinalLine) {
  TestServer ts;
  Client client = ts.connect();
  // Raw send WITHOUT the trailing newline: the half-close makes the
  // partial line final and it is processed as if terminated.
  const std::string partial =
      R"({"id":"last","op":"solve","task":"consensus","procs":2,"values":2})";
  ASSERT_EQ(::send(client.fd(), partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  client.shutdown_write();
  std::optional<std::string> line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(field(parse(*line), "id"), "last");
  EXPECT_EQ(field(parse(*line), "status"), "ok");
  EXPECT_FALSE(client.recv_line().has_value());  // then EOF
}

TEST(NetServer, HalfCloseAnswersEverythingThenEof) {
  TestServer ts;
  Client client = ts.connect();
  for (int i = 0; i < 8; ++i) {
    client.send_line(R"({"id":"h)" + std::to_string(i) +
                     R"(","op":"solve","task":"consensus","procs":2,)"
                     R"("values":2})");
  }
  client.shutdown_write();
  int responses = 0;
  while (std::optional<std::string> line = client.recv_line()) {
    EXPECT_EQ(field(parse(*line), "status"), "ok");
    ++responses;
  }
  EXPECT_EQ(responses, 8);
}

// ---------------------------------------------------------------------------
// Idle timeout and graceful drain.
// ---------------------------------------------------------------------------

TEST(NetServer, IdleConnectionsAreClosed) {
  ServerConfig config;
  config.idle_timeout = std::chrono::milliseconds(100);
  TestServer ts(std::move(config));
  Client client = ts.connect();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.recv_line().has_value());  // server closes us
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
  // A busy connection is NOT idle-closed: inflight queries hold it open.
  Client busy = ts.connect();
  Fields fields = parse(busy.roundtrip(
      R"({"id":"b","op":"check","target":"sds","procs":2,"rounds":2,)"
      R"("crashes":1})"));
  EXPECT_EQ(field(fields, "status"), "ok");
}

// A client that fills its receive window and stops reading must still be
// idle-closed: EPOLLOUT never fires for a peer that stops reading, so
// before the stalled-writer fix such a connection (and its buffered
// responses) was pinned forever.
TEST(NetServer, StalledReaderWithUnsentBytesIsIdleClosed) {
  ServerConfig config;
  config.idle_timeout = std::chrono::milliseconds(100);
  config.sndbuf_bytes = 4096;  // surface write backpressure after a few KB
  TestServer ts(std::move(config));
  Client client = ts.connect();
  int rcvbuf = 4096;
  ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  // Warm the memo so the flood below answers inline and cheaply.
  client.roundtrip(
      R"({"id":"w","op":"solve","task":"consensus","procs":2,"values":2})");
  // Far more response bytes than the two socket buffers can absorb; never
  // read any of them.
  for (int i = 0; i < 4000; ++i) {
    client.send_line(R"({"id":"p)" + std::to_string(i) +
                     R"(","op":"solve","task":"consensus","procs":2,)"
                     R"("values":2})");
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (ts.server.stats().active > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ts.server.stats().active, 0u);
  EXPECT_GE(ts.server.stats().dropped, 1u);
}

TEST(NetServer, DrainFlushesInflightThenCloses) {
  auto ts = std::make_unique<TestServer>();
  Client client = ts->connect();
  client.send_line(
      R"({"id":"inflight","op":"check","target":"sds","procs":2,"rounds":2,)"
      R"("crashes":1})");
  // Wait until the server has submitted the query, then drain.
  while (ts->server.stats().requests == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread drainer([&] { ts->server.drain(); });
  std::optional<std::string> line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(field(parse(*line), "id"), "inflight");
  EXPECT_EQ(field(parse(*line), "status"), "ok");
  EXPECT_FALSE(client.recv_line().has_value());  // drained connections close
  drainer.join();
  // A drained server refuses new connections.
  EXPECT_THROW(ts->connect(), std::system_error);
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

TEST(NetClient, ConnectToClosedPortThrows) {
  // Bind-then-close yields a port that is (very likely) refusing.
  std::uint16_t port = 0;
  { Fd listener = listen_tcp(Endpoint{"127.0.0.1", 0}, &port); }
  EXPECT_THROW(Client(ClientConfig{Endpoint{"127.0.0.1", port}}),
               std::system_error);
}

TEST(NetClient, RejectsOversizedResponseLines) {
  TestServer ts;
  ClientConfig config;
  config.server = Endpoint{"127.0.0.1", ts.server.port()};
  config.max_line_bytes = 64;  // envelopes are longer than this
  Client client(std::move(config));
  client.send_line(
      R"({"id":"s","op":"solve","task":"consensus","procs":2,"values":2})");
  EXPECT_THROW(client.recv_line(), std::runtime_error);
}

/// Reads and discards bytes on `fd` until the peer closes (or 5 s pass):
/// keeps a scripted connection open without ever answering, and returns
/// promptly when the client hangs up so test teardown joins fast.
void drain_until_eof(int fd) {
  char sink[256];
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 5000) <= 0) return;
    if (::recv(fd, sink, sizeof(sink), 0) <= 0) return;
  }
}

/// A scripted raw TCP peer: accepts exactly one connection and hands it to
/// `script`, which owns it (the Fd closes when the script returns).
struct RawPeer {
  explicit RawPeer(std::function<void(Fd)> script) {
    listener = listen_tcp(Endpoint{"127.0.0.1", 0}, &port);
    thread = std::thread([this, script = std::move(script)] {
      pollfd accept_poll{listener.get(), POLLIN, 0};
      if (::poll(&accept_poll, 1, 5000) <= 0) return;
      Fd conn(::accept(listener.get(), nullptr, nullptr));
      if (conn.valid()) script(std::move(conn));
    });
  }
  ~RawPeer() { thread.join(); }

  Fd listener;
  std::uint16_t port = 0;
  std::thread thread;
};

TEST(NetClient, RecvTimeoutFiresOnSilentServer) {
  RawPeer peer([](Fd conn) { drain_until_eof(conn.get()); });
  ClientConfig config;
  config.server = Endpoint{"127.0.0.1", peer.port};
  config.recv_timeout = std::chrono::milliseconds(100);
  Client client(std::move(config));
  client.send_line(R"({"id":"t","op":"stats"})");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.recv_line(), TimeoutError);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(90));
}

TEST(NetClient, RecvTimeoutCoversAPartialLine) {
  // The peer trickles half a line and stalls: the deadline bounds the
  // whole recv_line() call, not just the first byte.
  RawPeer peer([](Fd conn) {
    const char partial[] = "{\"id\":\"t\",\"sta";
    (void)::send(conn.get(), partial, sizeof(partial) - 1, MSG_NOSIGNAL);
    drain_until_eof(conn.get());
  });
  ClientConfig config;
  config.server = Endpoint{"127.0.0.1", peer.port};
  config.recv_timeout = std::chrono::milliseconds(100);
  Client client(std::move(config));
  client.send_line(R"({"id":"t","op":"stats"})");
  EXPECT_THROW(client.recv_line(), TimeoutError);
}

TEST(NetClient, PeerResetMidLineThrowsSystemError) {
  RawPeer peer([](Fd conn) {
    const char partial[] = "{\"id\":\"t\",\"sta";
    (void)::send(conn.get(), partial, sizeof(partial) - 1, MSG_NOSIGNAL);
    // SO_LINGER with zero timeout turns the close into a hard RST.
    linger hard{};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(conn.get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  });
  ClientConfig config;
  config.server = Endpoint{"127.0.0.1", peer.port};
  Client client(std::move(config));
  EXPECT_THROW(
      {
        // The reset can surface at the send (RST already arrived) or on
        // the first or a later read, depending on how much of the partial
        // line raced ahead of the RST.
        client.send_line(R"({"id":"t","op":"stats"})");
        while (client.recv_line().has_value()) {
        }
      },
      std::system_error);
}

TEST(NetClient, HalfCloseDrainsPipelinedBatchThenEof) {
  // A recv_timeout must not misfire while responses are flowing; after the
  // half-closed batch is fully answered the server's EOF arrives as
  // nullopt, not as a timeout or an error.
  TestServer ts;
  ClientConfig config;
  config.server = Endpoint{"127.0.0.1", ts.server.port()};
  config.recv_timeout = std::chrono::seconds(10);
  Client client(std::move(config));
  const int kBatch = 8;
  std::string batch;
  for (int i = 0; i < kBatch; ++i) {
    batch += R"({"id":"h)" + std::to_string(i) +
             R"(","op":"solve","task":"consensus","procs":2,"values":2})" +
             "\n";
  }
  client.send_raw(batch);
  client.shutdown_write();
  std::set<std::string> seen;
  while (std::optional<std::string> line = client.recv_line()) {
    const Fields fields = parse(*line);
    EXPECT_EQ(field(fields, "status"), "ok");
    EXPECT_TRUE(seen.insert(field(fields, "id")).second) << *line;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kBatch));
  EXPECT_TRUE(client.buffered_empty());
}

TEST(NetClient, SendRawPartialWriteCompletesUnderTinySndbuf) {
  // A payload far bigger than the shrunken socket buffers forces send()
  // into the EAGAIN + poll(POLLOUT) path of send_raw (the path only taken
  // when send_timeout is set); the peer stalls first so the buffers are
  // provably full, then drains everything and reports the byte count.
  const std::size_t kPayload = 1u << 20;
  std::atomic<std::size_t> peer_received{0};
  RawPeer peer([&peer_received](Fd conn) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    char sink[4096];
    for (;;) {
      pollfd p{conn.get(), POLLIN, 0};
      if (::poll(&p, 1, 5000) <= 0) return;
      const ssize_t n = ::recv(conn.get(), sink, sizeof(sink), 0);
      if (n <= 0) break;  // EOF: the client finished and half-closed
      peer_received.fetch_add(static_cast<std::size_t>(n));
    }
    const char done[] = "done\n";
    (void)::send(conn.get(), done, sizeof(done) - 1, MSG_NOSIGNAL);
    drain_until_eof(conn.get());
  });
  ClientConfig config;
  config.server = Endpoint{"127.0.0.1", peer.port};
  config.send_timeout = std::chrono::seconds(5);
  config.recv_timeout = std::chrono::seconds(5);
  Client client(std::move(config));
  int tiny = 4096;  // the kernel clamps/doubles; any small value works
  ASSERT_EQ(::setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof(tiny)),
            0);
  const std::string payload(kPayload, 'x');
  client.send_raw(payload);  // must not throw and must not truncate
  client.shutdown_write();
  const std::optional<std::string> ack = client.recv_line();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, "done");
  EXPECT_EQ(peer_received.load(), kPayload);
}

TEST(NetClient, SendRawTimesOutWhenPeerNeverDrains) {
  // The peer accepts and never reads: once the socket buffers fill, the
  // bounded sender must surface TimeoutError instead of wedging forever.
  RawPeer peer([](Fd conn) {
    pollfd p{conn.get(), POLLHUP, 0};
    (void)::poll(&p, 1, 5000);  // hold the connection open, read nothing
  });
  ClientConfig config;
  config.server = Endpoint{"127.0.0.1", peer.port};
  config.send_timeout = std::chrono::milliseconds(200);
  Client client(std::move(config));
  int tiny = 4096;
  ASSERT_EQ(::setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof(tiny)),
            0);
  const std::string payload(8u << 20, 'x');
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.send_raw(payload), TimeoutError);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(150));
}

// ---------------------------------------------------------------------------
// Load generator.
// ---------------------------------------------------------------------------

TEST(Loadgen, StripIdFieldHandlesEveryPosition) {
  EXPECT_EQ(strip_id_field(R"({"id":"a","op":"solve"})"), R"({"op":"solve"})");
  EXPECT_EQ(strip_id_field(R"({"op":"solve","id":"a"})"), R"({"op":"solve"})");
  EXPECT_EQ(strip_id_field(R"({"op":"x","id":"a","k":1})"),
            R"({"op":"x","k":1})");
  EXPECT_EQ(strip_id_field(R"({"id":42,"op":"x"})"), R"({"op":"x"})");
  EXPECT_EQ(strip_id_field(R"({"id":"a"})"), R"({})");
  EXPECT_EQ(strip_id_field(R"({"op":"solve"})"), R"({"op":"solve"})");
  // "id" as a VALUE is not the id field.
  EXPECT_EQ(strip_id_field(R"({"task":"id"})"), R"({"task":"id"})");
  EXPECT_EQ(strip_id_field(R"({"task":"id","id":"a"})"), R"({"task":"id"})");
}

TEST(Loadgen, StripFieldGeneralizesBeyondId) {
  // The router's deadline rewrite strips timeout_ms with the same helper.
  EXPECT_EQ(strip_field(R"({"timeout_ms":500,"op":"solve"})", "timeout_ms"),
            R"({"op":"solve"})");
  EXPECT_EQ(strip_field(R"({"op":"solve","timeout_ms":500})", "timeout_ms"),
            R"({"op":"solve"})");
  EXPECT_EQ(strip_field(R"({"a":1,"timeout_ms":500,"b":2})", "timeout_ms"),
            R"({"a":1,"b":2})");
  EXPECT_EQ(strip_field(R"({"op":"x"})", "timeout_ms"), R"({"op":"x"})");
  // The key text as a VALUE is untouched.
  EXPECT_EQ(strip_field(R"({"note":"timeout_ms"})", "timeout_ms"),
            R"({"note":"timeout_ms"})");
}

TEST(Loadgen, LoadCorpusSkipsCommentsAndValidates) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "{\"id\":\"a\",\"op\":\"stats\"}\r\n"
      "{\"op\":\"metrics\"}\n");
  const std::vector<std::string> corpus = load_corpus(in);
  ASSERT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus[0], R"({"op":"stats"})");
  EXPECT_EQ(corpus[1], R"({"op":"metrics"})");

  std::istringstream bad("not json\n");
  EXPECT_THROW(load_corpus(bad), std::invalid_argument);
}

TEST(Loadgen, EmptyCorpusThrows) {
  LoadgenConfig config;
  config.server = Endpoint{"127.0.0.1", 1};
  EXPECT_THROW(run_loadgen({}, config), std::invalid_argument);
}

// The storm: many connections hammering one server with pipelining, every
// request answered exactly once, server metrics reconciling afterwards.
// This is the test the TSan CI job leans on.
TEST(Loadgen, ConnectionStormIsExactlyOnce) {
  TestServer ts;
  std::vector<std::string> corpus = {
      R"({"op":"solve","task":"consensus","procs":2,"values":2})",
      R"({"op":"solve","task":"renaming","procs":2,"names":3})",
      R"({"op":"emulate","procs":2,"shots":1})",
  };
  LoadgenConfig config;
  config.server = Endpoint{"127.0.0.1", ts.server.port()};
  config.connections = 8;
  config.iterations = 10;
  config.max_inflight = 16;
  config.check_metrics = true;
  const LoadgenReport report = run_loadgen(corpus, config);
  EXPECT_EQ(report.sent, 8u * 10u * corpus.size());
  EXPECT_EQ(report.received, report.sent);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_TRUE(report.exactly_once());
  ASSERT_TRUE(report.metrics_reconcile.has_value());
  EXPECT_TRUE(*report.metrics_reconcile);
  EXPECT_GT(report.qps, 0.0);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"exactly_once\":true"), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"status_ok\":"), std::string::npos);

  // The by_status breakdown partitions every received response.
  std::uint64_t by_status_total = 0;
  for (const auto& [status, count] : report.by_status) {
    by_status_total += count;
  }
  EXPECT_EQ(by_status_total, report.received);
  ASSERT_NE(report.by_status.count("ok"), 0u);
  EXPECT_EQ(report.by_status.at("ok"), report.received);

  const Server::Stats wire = ts.server.stats();
  EXPECT_EQ(wire.accepted, 9u);  // 8 drivers + 1 metrics probe
  EXPECT_EQ(wire.requests, report.sent);
  EXPECT_GE(wire.responses, report.sent);
}

// Open loop: pacing still delivers exactly once.
TEST(Loadgen, OpenLoopPacedRunIsExactlyOnce) {
  TestServer ts;
  std::vector<std::string> corpus = {
      R"({"op":"solve","task":"consensus","procs":2,"values":2})",
  };
  LoadgenConfig config;
  config.server = Endpoint{"127.0.0.1", ts.server.port()};
  config.connections = 2;
  config.iterations = 20;
  config.rate = 400.0;
  const LoadgenReport report = run_loadgen(corpus, config);
  EXPECT_EQ(report.sent, 2u * 20u);
  EXPECT_TRUE(report.exactly_once());
  // 40 requests at 400 qps should take roughly 100ms, not finish instantly.
  EXPECT_GT(report.seconds, 0.05);
}

}  // namespace
}  // namespace wfc::net
