// Tests for the wfc::svc query service: thread pool, shared SDS-chain
// cache (hit/extension/eviction semantics, concurrent hammering),
// deadline/cancellation verdicts, determinism of pooled results against
// sequential solve, and the JSON-lines front-end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "protocol/sds_chain.hpp"
#include "service/frontend.hpp"
#include "service/jsonl.hpp"
#include "service/query_service.hpp"
#include "service/sds_cache.hpp"
#include "service/thread_pool.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "topology/complex.hpp"
#include "topology/subdivision.hpp"

namespace wfc::svc {
namespace {

using task::Solvability;
using topo::base_simplex;

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryJob) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, JobsRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int prev = max_seen.load();
      while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_flight.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 8) std::this_thread::yield();
  EXPECT_GE(max_seen.load(), 2);
}

TEST(ThreadPool, RejectsEmptyJob) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SdsChain sharing (the tentpole's extension mechanism).
// ---------------------------------------------------------------------------

TEST(SdsChainSharing, ExtensionSharesPrefixLevels) {
  proto::SdsChain base(base_simplex(3), 1);
  proto::SdsChain deeper(base, 3);
  ASSERT_EQ(deeper.depth(), 3);
  // Shared levels are the same objects, not copies.
  EXPECT_EQ(&base.level(0), &deeper.level(0));
  EXPECT_EQ(&base.level(1), &deeper.level(1));
  // And the extension really is SDS^2, SDS^3.
  EXPECT_EQ(deeper.level(2).num_vertices(),
            topo::iterated_sds(base_simplex(3), 2).num_vertices());
}

TEST(SdsChainSharing, TruncationSharesLevels) {
  proto::SdsChain deep(base_simplex(3), 2);
  proto::SdsChain shallow(deep, 1);
  ASSERT_EQ(shallow.depth(), 1);
  EXPECT_EQ(&shallow.level(0), &deep.level(0));
  EXPECT_EQ(&shallow.level(1), &deep.level(1));
  EXPECT_EQ(&shallow.top(), &deep.level(1));
}

// ---------------------------------------------------------------------------
// SdsCache.
// ---------------------------------------------------------------------------

TEST(SdsCache, HitExtensionAndMissAccounting) {
  SdsCache cache;
  const topo::ChromaticComplex input = base_simplex(3);

  bool built = false;
  auto c1 = cache.chain_for(input, 1, &built);
  EXPECT_TRUE(built);
  auto c2 = cache.chain_for(input, 1, &built);
  EXPECT_FALSE(built);  // pure hit
  EXPECT_EQ(&c1->level(1), &c2->level(1));

  auto c3 = cache.chain_for(input, 2, &built);
  EXPECT_TRUE(built);  // extension
  EXPECT_EQ(&c3->level(1), &c1->level(1));  // prefix shared

  auto c4 = cache.chain_for(input, 0, &built);
  EXPECT_FALSE(built);  // shallower request on a deeper tower
  EXPECT_GE(c4->depth(), 0);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.extensions, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_vertices, 0u);
}

TEST(SdsCache, EvictsLeastRecentlyUsed) {
  SdsCache::Options options;
  options.max_entries = 2;
  SdsCache cache(options);
  cache.chain_for(base_simplex(2), 1);
  cache.chain_for(base_simplex(3), 1);
  cache.chain_for(base_simplex(2), 1);  // touch 2 -> LRU order: 2, 3
  cache.chain_for(base_simplex(4), 0);  // evicts base_simplex(3)
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // Re-requesting the evicted input is a fresh miss.
  bool built = false;
  cache.chain_for(base_simplex(3), 1, &built);
  EXPECT_TRUE(built);
}

TEST(SdsCache, EvictsOnVertexBudget) {
  SdsCache::Options options;
  options.max_resident_vertices = 10;  // below one SDS tower of s^2
  SdsCache cache(options);
  cache.chain_for(base_simplex(3), 1);
  cache.chain_for(base_simplex(2), 1);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(SdsCache, ConcurrentHammeringSharesOneTower) {
  SdsCache cache;
  const topo::ChromaticComplex input = base_simplex(3);
  constexpr int kThreads = 8;
  constexpr int kIters = 25;

  std::vector<std::thread> threads;
  std::vector<std::vector<const topo::ChromaticComplex*>> tops(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Mix of depths (same input) and a second distinct input.
        const int depth = 1 + (i + t) % 2;
        auto chain = cache.chain_for(input, depth);
        tops[t].push_back(&chain->level(1));
        cache.chain_for(base_simplex(2), 1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Every thread saw the SAME level-1 complex object: built once, shared.
  std::set<const topo::ChromaticComplex*> distinct;
  for (const auto& seen : tops) distinct.insert(seen.begin(), seen.end());
  EXPECT_EQ(distinct.size(), 1u);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);  // one per distinct input
  EXPECT_LE(stats.extensions, 2u);
  EXPECT_EQ(stats.hits + stats.misses + stats.extensions,
            static_cast<std::uint64_t>(2 * kThreads * kIters));
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines in the solver.
// ---------------------------------------------------------------------------

/// Consensus with a sleep in Delta: a deterministic slow search (allows()
/// is consulted throughout domain construction and propagation).
class SlowConsensus final : public task::Task {
 public:
  SlowConsensus() : inner_(2, 2) {}
  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return inner_.input();
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return inner_.output();
  }
  [[nodiscard]] std::string name() const override { return "slow-consensus"; }
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return inner_.allows(in, out);
  }

 private:
  task::ConsensusTask inner_;
};

TEST(Cancellation, PreFlippedTokenCancelsImmediately) {
  task::ConsensusTask consensus(2, 2);
  std::atomic<bool> cancel{true};
  task::SolveOptions options;
  options.cancel = &cancel;
  const task::SolveResult r = task::solve(consensus, 2, options);
  EXPECT_EQ(r.status, Solvability::kCancelled);
  EXPECT_EQ(r.nodes_explored, 0u);
}

TEST(Cancellation, PastDeadlineCancels) {
  task::ConsensusTask consensus(2, 2);
  task::SolveOptions options;
  options.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  const task::SolveResult r = task::solve(consensus, 2, options);
  EXPECT_EQ(r.status, Solvability::kCancelled);
}

TEST(Cancellation, MidFlightTokenFlipStopsTheSearch) {
  // Level-2 refutation of (3,2)-set consensus is an exhaustive search that
  // takes tens of seconds uninterrupted; the token must stop it mid-flight
  // (it is checked at every backtracking node).
  task::KSetConsensusTask kset(3, 2);
  std::atomic<bool> cancel{false};
  task::SolveOptions options;
  options.cancel = &cancel;

  task::SolveResult result;
  std::thread solver([&] { result = task::solve(kset, 2, options); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cancel.store(true);
  solver.join();
  EXPECT_EQ(result.status, Solvability::kCancelled);
  EXPECT_GT(result.nodes_explored, 0u);
}

TEST(Cancellation, ServiceTimeoutYieldsDeadlineExceeded) {
  QueryService service;
  QueryOptions options;
  options.timeout = std::chrono::milliseconds(0);
  auto ticket =
      service.submit(Query::solve(std::make_shared<SlowConsensus>(), options));
  const QueryResult r = ticket.result.get();
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.solve.status, Solvability::kCancelled);
  EXPECT_EQ(service.stats().cancelled(), 1u);
  EXPECT_EQ(service.stats().count(Status::kDeadlineExceeded), 1u);
}

TEST(Cancellation, TicketTokenCancelsAQueuedQuery) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  // Occupy the single worker, then cancel a queued query before it runs.
  auto blocker = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  auto queued = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  queued.cancel->store(true);
  const QueryResult r = queued.result.get();
  EXPECT_EQ(r.status, Status::kCancelled);
  EXPECT_EQ(r.solve.status, Solvability::kCancelled);
  blocker.cancel->store(true);
  blocker.result.get();
}

TEST(Cancellation, CancelAllStopsEverything) {
  QueryService::Options options;
  options.workers = 2;
  QueryService service(options);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(service.submit(Query::solve(std::make_shared<SlowConsensus>())));
  }
  service.cancel_all();
  for (QueryTicket& t : tickets) {
    EXPECT_EQ(t.result.get().solve.status, Solvability::kCancelled);
  }
}

// ---------------------------------------------------------------------------
// Determinism: pooled results match sequential solve.
// ---------------------------------------------------------------------------

TEST(Determinism, PoolMatchesSequentialOnCanonicalSuite) {
  // Per-case levels keep each search cheap (kset(3,2) at level 2 is an
  // hours-of-CPU refutation; level 1 suffices to exercise a 3-proc search).
  // Factories build a FRESH instance per submission: the result memo (keyed
  // on object identity) never fires, so every query exercises the chain
  // cache plus a real search.
  using Factory = std::function<std::shared_ptr<task::Task>()>;
  std::vector<std::pair<Factory, int>> suite;
  suite.emplace_back([] { return std::make_shared<task::ConsensusTask>(2, 2); },
                     2);
  suite.emplace_back(
      [] { return std::make_shared<task::KSetConsensusTask>(3, 2); }, 1);
  suite.emplace_back([] { return std::make_shared<task::RenamingTask>(2, 2); },
                     2);
  suite.emplace_back(
      [] { return std::make_shared<task::ApproxAgreementTask>(2, 3); }, 2);
  suite.emplace_back(
      [] { return std::make_shared<task::IdentityTask>(base_simplex(3)); }, 1);

  std::vector<task::SolveResult> sequential;
  for (const auto& [make, max_level] : suite) {
    sequential.push_back(task::solve(*make(), max_level));
  }

  QueryService::Options options;
  options.workers = 4;
  QueryService service(options);
  // Submit the whole suite several times concurrently: results must be
  // bit-identical to the sequential run every time.
  std::vector<std::pair<std::size_t, QueryTicket>> tickets;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      QueryOptions qopts;
      qopts.max_level = suite[i].second;
      tickets.emplace_back(i, service.submit(Query::solve(suite[i].first(), qopts)));
    }
  }
  for (auto& [i, ticket] : tickets) {
    const QueryResult r = ticket.result.get();
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.solve.status, sequential[i].status);
    EXPECT_EQ(r.solve.level, sequential[i].level);
    EXPECT_EQ(r.solve.decision, sequential[i].decision);
    EXPECT_EQ(r.solve.nodes_explored, sequential[i].nodes_explored);
  }
  // The suite repeats over the same input complexes, so the chain cache
  // must be doing real sharing; no query was answered from the memo.
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.errors(), 0u);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Determinism, ResultMemoReplaysDefinitiveVerdicts) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  auto consensus = std::make_shared<task::ConsensusTask>(2, 2);

  const QueryResult first = service.submit(Query::solve(consensus)).result.get();
  ASSERT_TRUE(first.error.empty());
  EXPECT_FALSE(first.memoized);

  const QueryResult second = service.submit(Query::solve(consensus)).result.get();
  EXPECT_TRUE(second.memoized);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.solve.status, first.solve.status);
  EXPECT_EQ(second.solve.level, first.solve.level);
  EXPECT_EQ(second.solve.decision, first.solve.decision);
  EXPECT_EQ(second.solve.nodes_explored, first.solve.nodes_explored);
  EXPECT_EQ(service.stats().result_hits, 1u);

  // A different max_level is a different question: no replay.
  QueryOptions qopts;
  qopts.max_level = 1;
  const QueryResult other = service.submit(Query::solve(consensus, qopts)).result.get();
  EXPECT_FALSE(other.memoized);

  // A fresh instance of the same task is a different key too (the memo is
  // identity-based precisely because Delta cannot be fingerprinted cheaply).
  const QueryResult fresh =
      service.submit(Query::solve(std::make_shared<task::ConsensusTask>(2, 2)))
          .result.get();
  EXPECT_FALSE(fresh.memoized);
  EXPECT_TRUE(fresh.cache_hit);  // ...but its chains all come from the cache
}

TEST(Determinism, ProviderChainIsTruncatedToWitnessLevel) {
  // A provider may hand back a deeper tower; the solvable result must still
  // carry a chain with depth == level (DecisionProtocol's invariant).
  SdsCache cache;
  task::ApproxAgreementTask approx(2, 3);  // solvable at level 1
  task::SolveOptions options;
  options.chain_provider = [&cache](const topo::ChromaticComplex& input,
                                    int depth) {
    return cache.chain_for(input, std::max(depth, 3));  // always deep
  };
  const task::SolveResult r = task::solve(approx, 2, options);
  ASSERT_EQ(r.status, Solvability::kSolvable);
  EXPECT_EQ(r.level, 1);
  ASSERT_NE(r.chain, nullptr);
  EXPECT_EQ(r.chain->depth(), 1);
  EXPECT_EQ(r.decision.size(), r.chain->top().num_vertices());
}

// ---------------------------------------------------------------------------
// JSON-lines front-end.
// ---------------------------------------------------------------------------

TEST(Jsonl, ParsesFlatObjects) {
  const auto fields = parse_flat_json(
      R"({"task":"consensus","procs":2,"deadline":1.5,"ok":true,"s":"a\"b"})");
  EXPECT_EQ(fields.at("task"), "consensus");
  EXPECT_EQ(fields.at("procs"), "2");
  EXPECT_EQ(fields.at("deadline"), "1.5");
  EXPECT_EQ(fields.at("ok"), "true");
  EXPECT_EQ(fields.at("s"), "a\"b");
  EXPECT_TRUE(parse_flat_json("{}").empty());
  EXPECT_TRUE(parse_flat_json("  { }  ").empty());
}

TEST(Jsonl, RejectsMalformedInput) {
  EXPECT_THROW(parse_flat_json(""), std::invalid_argument);
  EXPECT_THROW(parse_flat_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_flat_json(R"({"a":1)"), std::invalid_argument);
  EXPECT_THROW(parse_flat_json(R"({"a":})"), std::invalid_argument);
  EXPECT_THROW(parse_flat_json(R"({"a":[1]})"), std::invalid_argument);
  EXPECT_THROW(parse_flat_json(R"({"a":1} x)"), std::invalid_argument);
  EXPECT_THROW(parse_flat_json(R"({"a":1e5})"), std::invalid_argument);
}

TEST(Jsonl, WriterEscapes) {
  const std::string line = JsonWriter()
                               .field("status", "SOLVABLE")
                               .field("level", 1)
                               .field("cache_hit", true)
                               .field("msg", "a\"b\nc")
                               .str();
  EXPECT_EQ(line,
            R"({"status":"SOLVABLE","level":1,"cache_hit":true,)"
            R"("msg":"a\"b\nc"})");
  // Round trip through the parser.
  const auto fields = parse_flat_json(line);
  EXPECT_EQ(fields.at("msg"), "a\"b\nc");
}

TEST(Frontend, MakeCanonicalTaskCoversEveryKind) {
  using Fields = std::map<std::string, std::string>;
  EXPECT_EQ(make_canonical_task(
                Fields{{"task", "consensus"}, {"procs", "2"}, {"values", "2"}})
                ->name(),
            "consensus(n=2,m=2)");
  EXPECT_NE(make_canonical_task(
                Fields{{"task", "set-consensus"}, {"procs", "3"}, {"k", "2"}}),
            nullptr);
  EXPECT_NE(make_canonical_task(
                Fields{{"task", "renaming"}, {"procs", "2"}, {"names", "2"}}),
            nullptr);
  EXPECT_NE(make_canonical_task(
                Fields{{"task", "approx"}, {"procs", "2"}, {"grid", "3"}}),
            nullptr);
  EXPECT_NE(make_canonical_task(Fields{{"task", "simplex-agreement"},
                                       {"procs", "2"},
                                       {"depth", "1"}}),
            nullptr);
  EXPECT_NE(make_canonical_task(Fields{{"task", "identity"}, {"procs", "3"}}),
            nullptr);
  EXPECT_THROW(make_canonical_task(Fields{{"task", "nope"}, {"procs", "2"}}),
               std::invalid_argument);
  EXPECT_THROW(make_canonical_task(Fields{{"task", "consensus"}}),
               std::invalid_argument);
}

TEST(Frontend, InternedTaskTableIsBounded) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  HandlerConfig config;
  config.max_interned_tasks = 8;
  RequestHandler handler(service, config);
  // 64 distinct task parameterizations; "budget":1 makes each search abort
  // immediately so the test measures interning, not solving.
  for (int i = 0; i < 64; ++i) {
    RequestHandler::ParsedLine parsed = handler.parse(
        R"({"op":"solve","task":"consensus","procs":2,"budget":1,"values":)" +
            std::to_string(2 + i) + "}",
        i + 1);
    ASSERT_EQ(parsed.action, RequestHandler::Action::kSubmit);
    RequestHandler::Rendered error;
    std::optional<RequestHandler::Submitted> submitted =
        handler.submit(parsed, &error);
    ASSERT_TRUE(submitted.has_value()) << error.line;
    (void)submitted->ticket.result.get();
    EXPECT_LE(handler.interned_tasks(), 8u);
  }
  EXPECT_EQ(handler.interned_tasks(), 8u);
  // A repeated request re-interns to the SAME object (LRU hit), keeping
  // result-memo identity across lines.
  RequestHandler::ParsedLine again = handler.parse(
      R"({"op":"solve","task":"consensus","procs":2,"budget":1,"values":65})",
      65);
  RequestHandler::Rendered error;
  std::optional<RequestHandler::Submitted> submitted =
      handler.submit(again, &error);
  ASSERT_TRUE(submitted.has_value()) << error.line;
  (void)submitted->ticket.result.get();
  EXPECT_EQ(handler.interned_tasks(), 8u);
}

TEST(Frontend, DepthFieldOverTheCapIsRejected) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  HandlerConfig config;
  config.max_task_depth = 3;
  RequestHandler handler(service, config);
  RequestHandler::ParsedLine deep = handler.parse(
      R"({"op":"solve","task":"simplex-agreement","procs":2,"depth":4})", 1);
  ASSERT_EQ(deep.action, RequestHandler::Action::kSubmit);
  RequestHandler::Rendered error;
  EXPECT_FALSE(handler.submit(deep, &error).has_value());
  EXPECT_NE(error.line.find("invalid_argument"), std::string::npos);
  EXPECT_NE(error.line.find("depth"), std::string::npos);
}

// ---------------------------------------------------------------------------
// kCheck queries (the wfc::chk model checker behind the service surface).
// ---------------------------------------------------------------------------

TEST(CheckQueries, SdsTargetReportsScheduleCounts) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  CheckRequest check;
  check.target = CheckRequest::Target::kSds;
  check.procs = 3;
  check.rounds = 1;
  const QueryResult r = service.submit(Query::check(check)).result.get();
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.is_check);
  EXPECT_TRUE(r.check_ok) << r.check_violation;
  EXPECT_EQ(r.check_schedules, 13u);  // Fubini(3)
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.check.runs, 1u);
  EXPECT_EQ(stats.check.schedules, 13u);
  EXPECT_EQ(stats.check.violations, 0u);
}

TEST(CheckQueries, EmulationTargetSurvivesCrashInjection) {
  QueryService service;
  CheckRequest check;
  check.target = CheckRequest::Target::kEmulation;
  check.procs = 2;
  check.rounds = 2;
  check.crashes = 1;
  check.shots = 1;
  const QueryResult r = service.submit(Query::check(check)).result.get();
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.check_ok) << r.check_violation;
  EXPECT_GT(r.check_histories, 0u);
  EXPECT_GT(r.check_max_depth, 0u);
}

TEST(CheckQueries, LinearizabilityTargetExploresInterleavings) {
  QueryService service;
  CheckRequest check;
  check.target = CheckRequest::Target::kLinearizability;
  check.procs = 2;
  check.rounds = 1;
  const QueryResult r = service.submit(Query::check(check)).result.get();
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.check_ok) << r.check_violation;
  EXPECT_GT(r.check_schedules, 1u);
  EXPECT_GT(r.check_max_depth, 0u);
  EXPECT_GT(service.stats().check.max_search_depth, 0u);
}

TEST(CheckQueries, BadParametersSurfaceAsErrors) {
  QueryService service;
  CheckRequest check;
  check.target = CheckRequest::Target::kLinearizability;
  check.procs = 7;  // out of the supported range
  const QueryResult r = service.submit(Query::check(check)).result.get();
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.status, Status::kInvalidArgument);
  EXPECT_EQ(service.stats().errors(), 1u);
}

// ---------------------------------------------------------------------------
// Seeded randomized stress: a reproducible mixed workload.
// ---------------------------------------------------------------------------

TEST(RandomizedStress, MixedWorkloadIsDeterministicUnderSeed) {
  // The seed is logged (and overridable via WFC_TEST_SEED) so a failing mix
  // can be replayed exactly.
  Rng rng(logged_test_seed("service_test", 0x5EED));
  QueryService::Options options;
  options.workers = 2;
  QueryService service(options);

  std::vector<std::pair<Solvability, QueryTicket>> tickets;
  for (int i = 0; i < 12; ++i) {
    switch (rng.below(3)) {
      case 0:
        tickets.emplace_back(
            Solvability::kUnsolvable,
            service.submit(Query::solve(
                std::make_shared<task::ConsensusTask>(2, 2))));
        break;
      case 1:
        tickets.emplace_back(
            Solvability::kSolvable,
            service.submit(Query::solve(
                std::make_shared<task::ApproxAgreementTask>(
                    2, rng.between(2, 4)))));
        break;
      default: {
        CheckRequest check;
        check.target = CheckRequest::Target::kSds;
        check.procs = rng.between(2, 3);
        check.rounds = 1;
        check.crashes = rng.between(0, 1);
        tickets.emplace_back(Solvability::kSolvable,
                             service.submit(Query::check(check)));
        break;
      }
    }
  }
  for (auto& [expected, ticket] : tickets) {
    const QueryResult r = ticket.result.get();
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.solve.status, expected);
    if (r.is_check) {
      EXPECT_TRUE(r.check_ok) << r.check_violation;
    }
  }
  EXPECT_EQ(service.stats().errors(), 0u);
}

TEST(Frontend, RejectsUnknownOpPerLine) {
  std::istringstream in(
      R"({"id":"good","task":"approx","procs":2,"grid":3})" "\n"
      R"({"id":"bad","op":"frobnicate","task":"consensus"})" "\n"
      R"({"op":"solve","id":"after","task":"approx","procs":2,"grid":3})"
      "\n");
  std::ostringstream out, err;
  ServeConfig config;
  config.service.workers = 1;
  config.stats_at_eof = false;
  const int errors = run_jsonl_server(in, out, err, config);
  EXPECT_EQ(errors, 1);

  std::vector<std::string> lines;
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  // The unknown op is reported on its own line, in order, echoing the id
  // and op so the client can tell a typo from a missing field.
  EXPECT_NE(lines[1].find("\"id\":\"bad\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"op\":\"frobnicate\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"invalid_argument\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"line\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("unknown op \\\"frobnicate\\\""),
            std::string::npos);
  // Lines before and after still execute normally.
  EXPECT_NE(lines[0].find("\"verdict\":\"SOLVABLE\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"verdict\":\"SOLVABLE\""), std::string::npos);
}

TEST(Frontend, ServesCheckOps) {
  std::istringstream in(
      R"({"id":"c1","op":"check","target":"sds","procs":2,"rounds":2})" "\n"
      R"({"id":"c2","op":"check","target":"emulation","procs":2,"rounds":1,"crashes":1})"
      "\n"
      R"({"id":"c3","op":"check","target":"bogus"})" "\n"
      R"({"op":"stats"})" "\n");
  std::ostringstream out, err;
  ServeConfig config;
  config.service.workers = 1;
  config.stats_at_eof = false;
  const int errors = run_jsonl_server(in, out, err, config);
  EXPECT_EQ(errors, 1);  // the bogus target

  std::vector<std::string> lines;
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"id\":\"c1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"verdict\":\"OK\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"schedules\":9"), std::string::npos);  // 3^2
  EXPECT_NE(lines[1].find("\"id\":\"c2\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"verdict\":\"OK\""), std::string::npos);
  EXPECT_NE(lines[2].find("unknown check target"), std::string::npos);
  EXPECT_NE(lines[3].find("check runs=2"), std::string::npos);
}

TEST(Frontend, ServesABatchInOrder) {
  std::istringstream in(
      "# comment\n"
      "\n"
      R"({"id":"q1","task":"consensus","procs":2,"values":2})" "\n"
      R"({"id":"q2","task":"approx","procs":2,"grid":3})" "\n"
      R"({"id":"q3","task":"approx","procs":2,"grid":3})" "\n"
      R"({"nonsense":true})" "\n"
      R"({"op":"emulate","procs":2,"shots":1})" "\n"
      R"({"op":"stats"})" "\n");
  std::ostringstream out, err;
  ServeConfig config;
  config.service.workers = 2;
  config.stats_at_eof = false;
  const int errors = run_jsonl_server(in, out, err, config);
  EXPECT_EQ(errors, 1);

  std::vector<std::string> lines;
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);

  EXPECT_NE(lines[0].find("\"id\":\"q1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"verdict\":\"UNSOLVABLE\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":\"q2\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"verdict\":\"SOLVABLE\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":1"), std::string::npos);
  // q3 repeats q2: the shared cache makes it a pure hit.
  EXPECT_NE(lines[2].find("\"cache_hit\":true"), std::string::npos);
  // The malformed line answers with the taxonomy token and its 1-based
  // input line number (the batch has a comment and a blank line first).
  EXPECT_NE(lines[3].find("\"status\":\"invalid_argument\""),
            std::string::npos);
  EXPECT_NE(lines[3].find("\"line\":6"), std::string::npos);
  EXPECT_NE(lines[4].find("\"rounds\""), std::string::npos);
  EXPECT_NE(lines[5].find("cache hits="), std::string::npos);
}

}  // namespace
}  // namespace wfc::svc
