// Chaos and resilience tests for the wfc::svc query service: admission
// control (reject-new / drop-oldest), deadline-at-dequeue, the watchdog's
// hard cap and stall detector, bad_alloc containment with cache shedding,
// pin-protected cache eviction, and the seeded chaos soak storm whose
// invariants define "robust": every ticket reaches exactly one terminal
// status, destruction mid-storm never deadlocks, and the service counters
// reconcile (submitted == sum of terminal statuses).
//
// Soak length is WFC_CHAOS_SOAK_MS (default 2000); CI's chaos-soak job runs
// a long storm under TSan.  The fault sequence is seeded via WFC_TEST_SEED.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "service/chaos.hpp"
#include "service/query_service.hpp"
#include "service/sds_cache.hpp"
#include "service/status.hpp"
#include "tasks/canonical.hpp"
#include "topology/complex.hpp"

namespace wfc::svc {
namespace {

using task::Solvability;
using topo::base_simplex;

int soak_millis() {
  const char* env = std::getenv("WFC_CHAOS_SOAK_MS");
  if (env == nullptr || *env == '\0') return 2000;
  return std::max(1, std::atoi(env));
}

/// Consensus whose Delta sleeps: a deterministically slow search that still
/// polls its cancel token at every node.
class SlowConsensus final : public task::Task {
 public:
  explicit SlowConsensus(std::chrono::microseconds nap =
                             std::chrono::microseconds(50))
      : inner_(2, 2), nap_(nap) {}
  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return inner_.input();
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return inner_.output();
  }
  [[nodiscard]] std::string name() const override { return "slow-consensus"; }
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override {
    std::this_thread::sleep_for(nap_);
    return inner_.allows(in, out);
  }

 private:
  task::ConsensusTask inner_;
  std::chrono::microseconds nap_;
};

/// Blocks a test until the worker has actually begun executing a query.
/// Sleeping instead is racy: under TSan the worker may still be starting
/// up, and a "queued" probe would land in the queue slot the test thinks
/// is empty (drop-oldest would then evict the wrong query).
struct StartGate {
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  void arm(QueryService::Options& options) {
    options.execute_hook = [this](std::atomic<bool>&) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++started;
      }
      cv.notify_all();
    };
  }
  void await(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started >= n; });
  }
};

/// Waits (bounded) for a ticket and returns its result; fails the test
/// instead of hanging forever if the service lost the query.
QueryResult get_within(QueryTicket& ticket, int seconds = 60) {
  const auto status =
      ticket.result.wait_for(std::chrono::seconds(seconds));
  EXPECT_EQ(status, std::future_status::ready)
      << "query never reached a terminal status";
  if (status != std::future_status::ready) return {};
  return ticket.result.get();
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(Admission, RejectNewShedsWithRetryHint) {
  QueryService::Options options;
  options.workers = 1;
  options.max_queue_depth = 1;
  options.admission_policy = AdmissionQueue::Policy::kRejectNew;
  StartGate gate;
  gate.arm(options);
  QueryService service(options);

  // Occupy the worker, fill the queue, then overflow.
  auto running = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  gate.await(1);
  auto queued = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  auto shed = service.submit(Query::solve(std::make_shared<SlowConsensus>()));

  const QueryResult r = get_within(shed);
  EXPECT_EQ(r.status, Status::kOverloaded);
  EXPECT_GT(r.retry_after_ms, 0u);

  service.cancel_all();
  get_within(running);
  get_within(queued);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.count(Status::kOverloaded), 1u);
  EXPECT_TRUE(stats.reconciles()) << stats.to_string();
}

TEST(Admission, DropOldestCancelsTheVictimAndAdmitsTheNewcomer) {
  QueryService::Options options;
  options.workers = 1;
  options.max_queue_depth = 1;
  options.admission_policy = AdmissionQueue::Policy::kDropOldest;
  StartGate gate;
  gate.arm(options);
  QueryService service(options);

  auto running = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  gate.await(1);
  auto victim = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  auto newcomer = service.submit(Query::solve(std::make_shared<SlowConsensus>()));

  // The victim is aborted synchronously by the overflowing submit.
  const QueryResult v = get_within(victim);
  EXPECT_EQ(v.status, Status::kOverloaded);

  service.cancel_all();
  get_within(running);
  const QueryResult n = get_within(newcomer);
  EXPECT_NE(n.status, Status::kOverloaded);  // admitted, then cancelled
  EXPECT_TRUE(service.stats().reconciles());
}

TEST(Admission, DeadlineExpiredWhileQueuedNeverStartsTheSearch) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);

  // Saturate the single worker so the timed query must wait in the queue
  // past its 0ms deadline.
  auto blocker = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  QueryOptions qopts;
  qopts.timeout = std::chrono::milliseconds(0);
  auto expired =
      service.submit(Query::solve(std::make_shared<SlowConsensus>(), qopts));

  service.cancel_all();
  const QueryResult r = get_within(expired);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.solve.status, Solvability::kCancelled);
  EXPECT_EQ(r.solve.nodes_explored, 0u);  // the search never ran
  get_within(blocker);
}

TEST(Admission, DegradedBudgetUnderLoadYieldsUnknown) {
  QueryService::Options options;
  options.workers = 1;
  options.max_queue_depth = 4;
  options.degrade_budget_under_load = true;
  StartGate gate;
  gate.arm(options);
  QueryService service(options);

  auto running = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  gate.await(1);
  // Fill the queue at least half full so dequeued searches degrade.  Approx
  // agreement needs real search nodes for its level-1 witness (unlike
  // consensus, which root propagation refutes for free), so a degraded
  // budget of 1 forces kUnknown.
  std::vector<QueryTicket> queued;
  for (int i = 0; i < 4; ++i) {
    QueryOptions qopts;
    qopts.node_budget = 2;  // degrades to 1 under pressure
    queued.push_back(service.submit(Query::solve(
        std::make_shared<task::ApproxAgreementTask>(2, 3), qopts)));
  }
  running.cancel->store(true);  // free the worker; the queue is now deep
  bool saw_degraded = false;
  for (auto& t : queued) {
    const QueryResult r = get_within(t);
    if (r.degraded) {
      saw_degraded = true;
      EXPECT_EQ(r.status, Status::kOk);
      EXPECT_EQ(r.solve.status, Solvability::kUnknown);
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_GE(service.stats().degraded, 1u);
  get_within(running);
}

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

TEST(WatchdogRules, HardTimeoutKillsARunawayQuery) {
  QueryService::Options options;
  options.workers = 1;
  options.hard_timeout = std::chrono::milliseconds(100);
  options.watchdog_scan_period = std::chrono::milliseconds(5);
  QueryService service(options);

  // No per-query deadline: only the watchdog can stop this slow search
  // (2ms per Delta consultation puts completion far past the hard cap).
  auto ticket = service.submit(Query::solve(
      std::make_shared<SlowConsensus>(std::chrono::milliseconds(2))));
  const QueryResult r = get_within(ticket);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.solve.status, Solvability::kCancelled);
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.watchdog_kills, 1u);
  EXPECT_TRUE(stats.reconciles());
}

TEST(WatchdogRules, SilentHeartbeatIsReportedAsStuck) {
  QueryService::Options options;
  options.workers = 1;
  options.watchdog_scan_period = std::chrono::milliseconds(5);
  options.watchdog_stall_scans = 3;
  options.hard_timeout = std::chrono::milliseconds(250);  // eventual rescue
  QueryService service(options);

  // Delta sleeps 20ms PER CALL: between two search nodes the heartbeat is
  // silent for many scans, which is exactly a stuck-worker signature.
  auto ticket = service.submit(Query::solve(
      std::make_shared<SlowConsensus>(std::chrono::milliseconds(20))));
  const QueryResult r = get_within(ticket);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);  // killed by the hard cap
  EXPECT_GE(service.stats().stuck_worker_reports, 1u);
}

// ---------------------------------------------------------------------------
// Fault containment: bad_alloc inside a query.
// ---------------------------------------------------------------------------

TEST(FaultContainment, BuildFaultIsContainedAndRetryable) {
  QueryService::Options options;
  options.workers = 1;
  std::atomic<int> faults_left{1};
  options.cache.build_fault_hook = [&faults_left] {
    if (faults_left.fetch_sub(1) > 0) throw std::bad_alloc();
  };
  QueryService service(options);

  auto first =
      service.submit(Query::solve(std::make_shared<task::ConsensusTask>(2, 2)));
  const QueryResult r1 = get_within(first);
  EXPECT_EQ(r1.status, Status::kResourceExhausted);
  EXPECT_GT(r1.retry_after_ms, 0u);
  EXPECT_GE(service.stats().cache.sheds, 1u);  // pressure response fired

  // The fault was transient; the retry succeeds and the cache is usable.
  auto second =
      service.submit(Query::solve(std::make_shared<task::ConsensusTask>(2, 2)));
  const QueryResult r2 = get_within(second);
  EXPECT_EQ(r2.status, Status::kOk);
  EXPECT_EQ(r2.solve.status, Solvability::kUnsolvable);
  EXPECT_TRUE(service.stats().reconciles());
}

// ---------------------------------------------------------------------------
// Cache pinning and shedding.
// ---------------------------------------------------------------------------

TEST(CachePinning, EvictionSkipsEntriesBeingBuilt) {
  SdsCache::Options options;
  options.max_entries = 1;  // maximal eviction pressure
  std::mutex mu;
  std::condition_variable cv;
  bool block_build = true;  // only the first build blocks
  bool in_build = false;
  bool release = false;
  options.build_fault_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    if (!block_build) return;
    block_build = false;
    in_build = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  SdsCache cache(options);

  // Builder parks mid-build of base_simplex(3)'s tower, holding the pin.
  std::thread builder([&cache] {
    auto chain = cache.chain_for(base_simplex(3), 1);
    EXPECT_GE(chain->depth(), 1);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_build; });
  }
  // Churn other entries through the over-capacity cache: the pinned entry
  // must survive every eviction pass (the WFC_CHECK inside chain_for would
  // abort the build if it did not).
  cache.chain_for(base_simplex(2), 1);
  cache.chain_for(base_simplex(4), 0);
  {
    // Pressure really was applied around the pin: a cold entry was evicted,
    // while the mid-build entry is still indexed.
    const CacheStats mid = cache.stats();
    EXPECT_GE(mid.evictions, 1u);
    EXPECT_EQ(mid.entries, 2u);  // the hottest entry plus the pinned one
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  builder.join();
  // Once unpinned, the entry is subject to the normal LRU bound again --
  // containment over, no special cases left behind.
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(CachePinning, ShedReleasesColdWeight) {
  SdsCache cache;
  cache.chain_for(base_simplex(2), 1);
  cache.chain_for(base_simplex(3), 1);
  cache.chain_for(base_simplex(4), 1);
  const std::size_t before = cache.stats().resident_vertices;
  ASSERT_GT(before, 0u);

  const std::size_t evicted = cache.shed(0.5);
  EXPECT_GE(evicted, 1u);
  const CacheStats after = cache.stats();
  EXPECT_EQ(after.sheds, 1u);
  EXPECT_LT(after.resident_vertices, before);
  // Shedding starts from the cold tail: the most recent entry survives.
  bool built = true;
  cache.chain_for(base_simplex(4), 1, &built);
  EXPECT_FALSE(built);
}

// ---------------------------------------------------------------------------
// Shutdown.
// ---------------------------------------------------------------------------

TEST(Shutdown, DestructorDrainsEveryPendingFuture) {
  std::vector<QueryTicket> tickets;
  {
    QueryService::Options options;
    options.workers = 2;
    options.max_queue_depth = 64;
    QueryService service(options);
    for (int i = 0; i < 24; ++i) {
      tickets.push_back(
          service.submit(Query::solve(std::make_shared<SlowConsensus>())));
    }
  }  // destructor: cancel, close, drain, join -- no ticket left behind
  for (QueryTicket& t : tickets) {
    const auto status = t.result.wait_for(std::chrono::seconds(0));
    EXPECT_EQ(status, std::future_status::ready);
    const QueryResult r = t.result.get();
    EXPECT_NE(r.status, Status::kOk);  // nothing this slow finished cleanly
  }
}

TEST(Shutdown, SubmitAfterHeavyCancelStillTerminates) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  auto a = service.submit(Query::solve(std::make_shared<SlowConsensus>()));
  service.cancel_all();
  auto b = service.submit(Query::solve(std::make_shared<task::ConsensusTask>(2, 2)));
  get_within(a);
  const QueryResult r = get_within(b);
  EXPECT_EQ(r.status, Status::kOk);  // cancel_all is not shutdown
  EXPECT_TRUE(service.stats().reconciles());
}

// ---------------------------------------------------------------------------
// The chaos soak storm.
// ---------------------------------------------------------------------------

TEST(ChaosSoak, StormPreservesEveryInvariant) {
  const std::uint64_t seed = logged_test_seed("service_chaos_test", 0xC4A05);
  Rng rng(seed);

  ChaosMonkey::Options chaos_options;
  chaos_options.seed = seed ^ 0x9e3779b97f4a7c15ull;
  chaos_options.cancel_prob = 0.25;
  chaos_options.stall_prob = 0.10;
  chaos_options.stall_for = std::chrono::milliseconds(20);
  chaos_options.build_fault_prob = 0.10;
  ChaosMonkey chaos(chaos_options);

  QueryService::Options options;
  options.workers = 3;
  options.max_inflight = 2;
  options.max_queue_depth = 8;
  options.admission_policy = AdmissionQueue::Policy::kRejectNew;
  options.degrade_budget_under_load = true;
  options.hard_timeout = std::chrono::milliseconds(400);
  options.watchdog_scan_period = std::chrono::milliseconds(5);
  options.watchdog_stall_scans = 3;
  options.obs.enabled = true;  // metrics + tracing ride along under chaos
  options.obs.trace_capacity = 1 << 12;
  chaos.arm(options);

  const auto storm_end = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(soak_millis());
  std::uint64_t submitted = 0;
  std::uint64_t terminal[kNumStatuses] = {};
  std::vector<QueryTicket> window;

  {
    QueryService service(options);

    auto reap = [&](std::size_t keep) {
      while (window.size() > keep) {
        QueryResult r = get_within(window.front());
        ++terminal[static_cast<int>(r.status)];
        window.erase(window.begin());
      }
    };

    // A small pool of shared tasks (memo + cache hits), fresh instances
    // (real searches), slow tasks (stall/kill fodder), check queries, and
    // direct caller cancellations on top of the injected faults.
    auto shared_consensus = std::make_shared<task::ConsensusTask>(2, 2);
    auto shared_approx = std::make_shared<task::ApproxAgreementTask>(2, 3);
    while (std::chrono::steady_clock::now() < storm_end) {
      switch (rng.below(6)) {
        case 0:
          window.push_back(service.submit(Query::solve(shared_consensus)));
          break;
        case 1:
          window.push_back(service.submit(Query::solve(shared_approx)));
          break;
        case 2:
          window.push_back(service.submit(Query::solve(
              std::make_shared<task::ApproxAgreementTask>(
                  2, rng.between(2, 4)))));
          break;
        case 3:
          window.push_back(service.submit(Query::solve(
              std::make_shared<SlowConsensus>(
                  std::chrono::microseconds(200)))));
          break;
        case 4: {
          CheckRequest check;
          check.target = CheckRequest::Target::kSds;
          check.procs = rng.between(2, 3);
          check.rounds = 1;
          Query query = Query::check(check);
          if (rng.below(8) == 0) {
            query.options.timeout = std::chrono::milliseconds(
                rng.between(0, 5));
          }
          window.push_back(service.submit(std::move(query)));
          break;
        }
        default: {
          QueryOptions qopts;
          if (rng.below(4) == 0) {
            qopts.timeout = std::chrono::milliseconds(rng.between(0, 10));
          }
          window.push_back(service.submit(Query::solve(
              std::make_shared<task::ConsensusTask>(2, 2), qopts)));
          break;
        }
      }
      ++submitted;
      if (rng.below(10) == 0) window.back().cancel->store(true);
      if (window.size() >= 64) reap(32);
      if (rng.below(50) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    // Mid-storm the obs layer must agree with the service on admissions
    // (submit() bumps the counter synchronously) and the trace ring must be
    // absorbing spans despite the injected faults.
    EXPECT_EQ(service.observer()
                  .metrics()
                  .counter("wfc_queries_submitted_total")
                  .value(),
              submitted);
    ASSERT_NE(service.observer().trace(), nullptr);
    EXPECT_GT(service.observer().trace()->recorded(), 0u);

    // Exit the scope with queries still queued and running: destruction
    // mid-storm must cancel, drain, and join without deadlocking.
  }

  // Every ticket -- including those alive at destruction -- reaches exactly
  // one terminal status.
  for (QueryTicket& t : window) {
    const auto status = t.result.wait_for(std::chrono::seconds(0));
    ASSERT_EQ(status, std::future_status::ready)
        << "ticket left pending after service destruction";
    ++terminal[static_cast<int>(t.result.get().status)];
  }
  std::uint64_t reaped = 0;
  for (std::uint64_t c : terminal) reaped += c;
  EXPECT_EQ(reaped, submitted);

  // Under these odds a real storm exercised every fault path.
  const ChaosMonkey::Stats injected = chaos.stats();
  EXPECT_GT(injected.cancels + injected.stalls + injected.build_faults, 0u);
  EXPECT_GT(submitted, 0u);
}

TEST(ChaosSoak, StatsReconcileAfterAStormThatRunsToCompletion) {
  const std::uint64_t seed = test_seed(0x50a7ull);
  Rng rng(seed);

  ChaosMonkey::Options chaos_options;
  chaos_options.seed = seed;
  chaos_options.cancel_prob = 0.3;
  chaos_options.build_fault_prob = 0.2;
  ChaosMonkey chaos(chaos_options);

  QueryService::Options options;
  options.workers = 2;
  options.max_queue_depth = 4;
  options.admission_policy = AdmissionQueue::Policy::kDropOldest;
  options.obs.enabled = true;
  chaos.arm(options);
  QueryService service(options);

  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 200; ++i) {
    tickets.push_back(service.submit(Query::solve(
        rng.coin()
            ? std::static_pointer_cast<const task::Task>(
                  std::make_shared<task::ConsensusTask>(2, 2))
            : std::static_pointer_cast<const task::Task>(
                  std::make_shared<task::ApproxAgreementTask>(2, 3)))));
    if (rng.below(5) == 0) tickets.back().cancel->store(true);
  }
  for (QueryTicket& t : tickets) get_within(t);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 200u);
  EXPECT_TRUE(stats.reconciles()) << stats.to_string();

  // The obs registry reconciles with ServiceStats after the same storm:
  // the submitted counter matches and the per-status terminal counters sum
  // back to it, despite cancellations, drop-oldest evictions, and injected
  // build faults.
  obs::MetricsRegistry& reg = service.observer().metrics();
  EXPECT_EQ(reg.counter("wfc_queries_submitted_total").value(),
            stats.submitted);
  std::uint64_t obs_terminal = 0;
  for (int s = 0; s < kNumStatuses; ++s) {
    obs_terminal +=
        reg.counter("wfc_queries_terminal_total",
                    std::string(R"(status=")") +
                        to_json_token(static_cast<Status>(s)) + R"(")")
            .value();
  }
  EXPECT_EQ(obs_terminal, stats.submitted);
  // The service survived injected faults and still answers correctly.
  auto probe = service.submit(Query::solve(
      std::make_shared<task::ConsensusTask>(2, 2)));
  // A build fault may still hit the probe; retry a few times.
  QueryResult r = get_within(probe);
  for (int i = 0; i < 32 && r.status != Status::kOk; ++i) {
    auto again = service.submit(Query::solve(
        std::make_shared<task::ConsensusTask>(2, 2)));
    r = get_within(again);
  }
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.solve.status, Solvability::kUnsolvable);
}

}  // namespace
}  // namespace wfc::svc
