// Model-parameterized queries through the service stack: the "model" wire
// field end-to-end (RequestHandler), result-memo / SdsCache / ChainStore
// key separation between models over the same task, v1 store back-compat,
// the convergence fallback, and the chk run-filter behind op:"check".
//
// The companion model_test.cpp validates the THEORY (restrictions match
// the explore_iis oracle, known separations reproduce); this file validates
// the PLUMBING -- that two models over one task never share a verdict,
// tower, or file, and that a model-less request is bit-for-bit what it was
// before wfc::model existed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "model/restrict.hpp"
#include "service/handler.hpp"
#include "service/query_service.hpp"
#include "service/sds_cache.hpp"
#include "store/chain_store.hpp"
#include "tasks/canonical.hpp"
#include "topology/complex.hpp"
#include "topology/hash.hpp"

namespace wfc::svc {
namespace {

using task::Solvability;

/// Fresh temp directory per test; removed on scope exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/wfc_model_svc_test_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

/// Parses, submits, and waits out one request line; returns the rendered
/// response (or the error record).
std::string roundtrip(RequestHandler& handler, const std::string& line,
                      int line_no = 1) {
  RequestHandler::ParsedLine parsed = handler.parse(line, line_no);
  if (parsed.action == RequestHandler::Action::kRespond) {
    return parsed.immediate.line;
  }
  EXPECT_EQ(parsed.action, RequestHandler::Action::kSubmit) << line;
  RequestHandler::Rendered error;
  std::optional<RequestHandler::Submitted> submitted =
      handler.submit(parsed, &error);
  if (!submitted.has_value()) return error.line;
  const QueryResult result = submitted->ticket.result.get();
  return handler.render(submitted->meta, result).line;
}

// ---------------------------------------------------------------------------
// Wire surface: the "model" field on solve / convergence / check.
// ---------------------------------------------------------------------------

TEST(HandlerModel, OmittedAndWaitFreeRenderIdentically) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  RequestHandler handler(service, {});
  const std::string bare = roundtrip(
      handler,
      R"js({"id":"a","op":"solve","task":"consensus","procs":2,"values":2,"max_level":1})js");
  const std::string explicit_wf = roundtrip(
      handler,
      R"js({"id":"a","op":"solve","task":"consensus","procs":2,"values":2,"max_level":1,"model":"wait_free"})js");
  // Same id on purpose: an explicit wait_free must render the model-less
  // response shape -- no "model" echo, same verdict, same node count.  Only
  // the timing tail (cache_hit/micros) may differ, and it differs in the
  // direction that PROVES key sharing: the second request replays the
  // first's memo entry, so tag-0 and model-less landed on one key.
  const auto head = [](const std::string& line) {
    return line.substr(0, line.find(",\"cache_hit\""));
  };
  EXPECT_EQ(head(bare), head(explicit_wf));
  EXPECT_EQ(bare.find("\"model\""), std::string::npos);
  EXPECT_EQ(explicit_wf.find("\"model\""), std::string::npos) << explicit_wf;
  EXPECT_NE(bare.find("\"verdict\":\"UNSOLVABLE\""), std::string::npos)
      << bare;
  EXPECT_NE(explicit_wf.find("\"cache_hit\":true"), std::string::npos)
      << explicit_wf;
}

TEST(HandlerModel, NonWaitFreeModelIsEchoedAndChangesTheVerdict) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  RequestHandler handler(service, {});
  // Consensus is wait-free unsolvable but solvable in the synchronous model
  // t_resilient(0): the only admissible runs are the fully synchronous
  // ones, whose central facets are disjoint per input assignment.
  const std::string line = roundtrip(
      handler,
      R"js({"op":"solve","task":"consensus","procs":2,"values":2,"max_level":1,"model":"t_resilient(0)"})js");
  EXPECT_NE(line.find("\"model\":\"t_resilient(0)\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"verdict\":\"SOLVABLE\""), std::string::npos) << line;
}

TEST(HandlerModel, UnknownAndMisplacedModelsAreRejected) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  RequestHandler handler(service, {});
  const std::string bogus = roundtrip(
      handler,
      R"js({"op":"solve","task":"consensus","procs":2,"values":2,"model":"bogus"})js");
  EXPECT_NE(bogus.find("invalid_argument"), std::string::npos) << bogus;
  const std::string emulate = roundtrip(
      handler, R"js({"op":"emulate","procs":2,"model":"t_resilient(1)"})js");
  EXPECT_NE(emulate.find("invalid_argument"), std::string::npos) << emulate;
  const std::string lin = roundtrip(
      handler,
      R"js({"op":"check","target":"linearizability","procs":2,"model":"t_resilient(1)"})js");
  EXPECT_NE(lin.find("invalid_argument"), std::string::npos) << lin;
}

TEST(HandlerModel, SymmetryAcceptsJsonBooleans) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  RequestHandler handler(service, {});
  // "symmetry":true (a JSON boolean, not an integer) must be accepted and
  // must actually reduce the sweep: 4 orbit representatives instead of the
  // 13 ordered partitions of 3 processors.
  const std::string reduced = roundtrip(
      handler, R"js({"op":"check","procs":3,"rounds":1,"symmetry":true})js");
  EXPECT_NE(reduced.find("\"verdict\":\"OK\""), std::string::npos) << reduced;
  EXPECT_NE(reduced.find("\"schedules\":4"), std::string::npos) << reduced;
  const std::string off = roundtrip(
      handler, R"js({"op":"check","procs":3,"rounds":1,"symmetry":false})js");
  EXPECT_NE(off.find("\"schedules\":13"), std::string::npos) << off;
  // The pre-existing 0/1 integer spelling keeps working.
  const std::string legacy = roundtrip(
      handler, R"js({"op":"check","procs":3,"rounds":1,"symmetry":1})js");
  EXPECT_NE(legacy.find("\"schedules\":4"), std::string::npos) << legacy;
}

TEST(HandlerModel, CheckSdsFiltersRunsByModel) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  RequestHandler handler(service, {});
  // n=2, b=1: three runs wait-free; only the synchronous {0,1} block
  // survives t_resilient(0).
  const std::string all = roundtrip(
      handler, R"js({"op":"check","procs":2,"rounds":1})js");
  EXPECT_NE(all.find("\"schedules\":3"), std::string::npos) << all;
  const std::string sync = roundtrip(
      handler,
      R"js({"op":"check","procs":2,"rounds":1,"model":"t_resilient(0)"})js");
  EXPECT_NE(sync.find("\"verdict\":\"OK\""), std::string::npos) << sync;
  EXPECT_NE(sync.find("\"schedules\":1"), std::string::npos) << sync;
  EXPECT_NE(sync.find("\"model\":\"t_resilient(0)\""), std::string::npos)
      << sync;
}

TEST(HandlerModel, ConvergenceFallsBackToRestrictedSolve) {
  QueryService::Options options;
  options.workers = 1;
  QueryService service(options);
  RequestHandler handler(service, {});
  // Model-less convergence goes through the §5 compiler; with a model it
  // re-routes through the restricted Prop 3.1 solve.  Simplex agreement is
  // solvable either way -- what must hold is that the model variant still
  // answers ok and echoes its model.
  const std::string compiled = roundtrip(
      handler, R"js({"op":"convergence","procs":2,"depth":1})js");
  EXPECT_NE(compiled.find("\"verdict\":\"SOLVABLE\""), std::string::npos)
      << compiled;
  const std::string restricted = roundtrip(
      handler,
      R"js({"op":"convergence","procs":2,"depth":1,"model":"t_resilient(0)"})js");
  EXPECT_NE(restricted.find("\"verdict\":\"SOLVABLE\""), std::string::npos)
      << restricted;
  EXPECT_NE(restricted.find("\"model\":\"t_resilient(0)\""),
            std::string::npos)
      << restricted;
}

// ---------------------------------------------------------------------------
// Result-memo separation: one task object, two models, two verdicts.
// ---------------------------------------------------------------------------

TEST(MemoSeparation, SameTaskUnderTwoModelsNeverSharesAVerdict) {
  QueryService::Options options;
  options.workers = 2;
  QueryService service(options);
  const auto task = std::make_shared<task::ConsensusTask>(2, 2);
  const auto sync = model::Model::parse("t_resilient(0)");
  QueryOptions qopts;
  qopts.max_level = 1;

  const QueryResult wf_first =
      service.submit(Query(SolveRequest{task, nullptr}, qopts)).result.get();
  const QueryResult sync_first =
      service.submit(Query(SolveRequest{task, sync}, qopts)).result.get();
  EXPECT_EQ(wf_first.solve.status, Solvability::kUnsolvable);
  EXPECT_EQ(sync_first.solve.status, Solvability::kSolvable);
  EXPECT_FALSE(wf_first.memoized);
  EXPECT_FALSE(sync_first.memoized);

  // Resubmissions hit the memo -- each under ITS OWN key.  A shared key
  // would replay whichever verdict was stored first for both.
  const QueryResult wf_again =
      service.submit(Query(SolveRequest{task, nullptr}, qopts)).result.get();
  const QueryResult sync_again =
      service.submit(Query(SolveRequest{task, sync}, qopts)).result.get();
  EXPECT_TRUE(wf_again.memoized);
  EXPECT_TRUE(sync_again.memoized);
  EXPECT_EQ(wf_again.solve.status, Solvability::kUnsolvable);
  EXPECT_EQ(sync_again.solve.status, Solvability::kSolvable);

  // An explicit wait_free model shares the model-less memo entry (tag 0).
  const auto wf = model::Model::parse("wait_free");
  const QueryResult wf_explicit =
      service.submit(Query(SolveRequest{task, wf}, qopts)).result.get();
  EXPECT_TRUE(wf_explicit.memoized);
  EXPECT_EQ(wf_explicit.solve.status, Solvability::kUnsolvable);
}

// ---------------------------------------------------------------------------
// SdsCache separation: restricted towers are distinct entries.
// ---------------------------------------------------------------------------

TEST(CacheSeparation, DerivedTowersGetTheirOwnEntries) {
  SdsCache cache;
  const topo::ChromaticComplex input = topo::base_simplex(2);
  const std::uint64_t base_fp = topo::complex_fingerprint(input);
  const auto sync = model::Model::parse("t_resilient(0)");
  const std::uint64_t key = model::mix_fingerprint(base_fp, sync->tag());
  ASSERT_NE(key, base_fp);

  const auto full = cache.chain_for(input, 1);
  ASSERT_NE(full, nullptr);

  bool built = false;
  const auto builder = [&](std::shared_ptr<const proto::SdsChain> prior,
                           int depth) {
    return model::restricted_tower(*full, depth, *sync, prior);
  };
  const auto derived =
      cache.derived_chain_for(key, sync->tag(), 1, builder, &built);
  ASSERT_NE(derived, nullptr);
  EXPECT_TRUE(built);
  EXPECT_EQ(cache.stats().entries, 2u);
  // The restriction really pruned: 1 synchronous facet of the 3 level-1
  // facets per base facet.
  EXPECT_LT(derived->arena(1).num_facets(), full->arena(1).num_facets());

  // Same key again: pure hit, no rebuild, same tower object.
  bool built_again = true;
  const auto again =
      cache.derived_chain_for(key, sync->tag(), 1, builder, &built_again);
  EXPECT_FALSE(built_again);
  EXPECT_EQ(again.get(), derived.get());
}

// ---------------------------------------------------------------------------
// ChainStore: v2 tag separation and v1 back-compat.
// ---------------------------------------------------------------------------

TEST(StoreModelTags, MismatchedTagIsAFallbackNeverAChain) {
  TempDir dir;
  store::ChainStore store({.dir = dir.path});
  ASSERT_TRUE(store.enabled());
  const proto::SdsChain chain(topo::base_simplex(2), 1);
  const std::uint64_t fp = 0x1234u;
  ASSERT_TRUE(store.publish(fp, chain, /*model_tag=*/77));

  EXPECT_NE(store.load(fp, 77), nullptr);
  // Wrong expectation (including "unrestricted"): fallback, not a chain.
  EXPECT_EQ(store.load(fp, 0), nullptr);
  EXPECT_EQ(store.load(fp, 78), nullptr);
  EXPECT_EQ(store.stats().fallbacks, 2u);

  // list() surfaces the recorded tag so warm() can satisfy the guard.
  const auto entries = store.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].model_tag, 77u);
}

TEST(StoreModelTags, PreModelV1FilesLoadAsWaitFree) {
  TempDir dir;
  const proto::SdsChain chain(topo::base_simplex(2), 1);
  const std::uint64_t fp = topo::complex_fingerprint(topo::base_simplex(2));
  std::string path;
  {
    store::ChainStore store({.dir = dir.path});
    ASSERT_TRUE(store.publish(fp, chain));
    path = store.file_path(fp);
  }
  // Rewrite the v2 file into the exact v1 layout a pre-model build wrote:
  // version 1, the 8-byte model_tag dropped from the header, table and
  // payload shifted up by 8.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GE(bytes.size(), sizeof(store::ChainFileHeader));
  const std::uint32_t v1 = 1;
  bytes.replace(8, 4, reinterpret_cast<const char*>(&v1), 4);
  bytes.erase(store::kHeaderBytesV1, 8);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  store::ChainStore reopened({.dir = dir.path});
  const auto loaded = reopened.load(fp);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->depth(), 1);
  EXPECT_EQ(topo::complex_fingerprint(loaded->level(0)), fp);
  // A v1 file is by construction an unrestricted tower: serving it as
  // wait_free is correct and counts NO fallback.
  EXPECT_EQ(reopened.stats().fallbacks, 0u);
  // ...but it can never impersonate a restricted tower.
  EXPECT_EQ(reopened.load(fp, 99), nullptr);
  EXPECT_EQ(reopened.stats().fallbacks, 1u);
}

TEST(StoreModelTags, RestartServesRestrictedTowersWithoutRebuilding) {
  TempDir dir;
  const topo::ChromaticComplex input = topo::base_simplex(2);
  const std::uint64_t base_fp = topo::complex_fingerprint(input);
  const auto sync = model::Model::parse("t_resilient(0)");
  const std::uint64_t key = model::mix_fingerprint(base_fp, sync->tag());

  SdsCache::Options opts;
  opts.store.dir = dir.path;
  std::uint64_t derived_facets = 0;
  {
    SdsCache cache(opts);
    const auto full = cache.chain_for(input, 1);
    bool built = false;
    const auto derived = cache.derived_chain_for(
        key, sync->tag(), 1,
        [&](std::shared_ptr<const proto::SdsChain> prior, int depth) {
          return model::restricted_tower(*full, depth, *sync, prior);
        },
        &built);
    ASSERT_TRUE(built);
    derived_facets = derived->arena(1).num_facets();
  }
  // Fresh process: the derived tower comes back from disk -- the builder
  // must never run (it aborts the test if it does).
  SdsCache cache(opts);
  bool built = true;
  const auto derived = cache.derived_chain_for(
      key, sync->tag(), 1,
      [](std::shared_ptr<const proto::SdsChain>, int)
          -> std::shared_ptr<const proto::SdsChain> {
        ADD_FAILURE() << "restricted tower rebuilt despite a warm store";
        return nullptr;
      },
      &built);
  ASSERT_NE(derived, nullptr);
  EXPECT_FALSE(built);
  EXPECT_EQ(derived->arena(1).num_facets(), derived_facets);
  EXPECT_GE(cache.stats().store_hits, 1u);
}

}  // namespace
}  // namespace wfc::svc
