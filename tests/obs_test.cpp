// Tests for the wfc::obs observability layer (PR 4): the metrics registry,
// the lock-free trace ring, the Observer facade, and the JSONL v2 protocol
// that exposes them -- including the golden-file round trips the issue asks
// for (new envelope, legacy-envelope flag, legacy "task" routing, and the
// metrics / trace ops).
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "service/frontend.hpp"
#include "service/jsonl.hpp"
#include "service/query_service.hpp"
#include "service/status.hpp"
#include "tasks/canonical.hpp"

namespace wfc {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::Observer;
using obs::ObsConfig;
using obs::Span;
using obs::SpanKind;
using obs::TraceContext;
using obs::TraceSink;

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterAndGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Gauge g;
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);
}

TEST(Metrics, HistogramBucketBoundsAreInclusive) {
  Histogram h({10, 100, 1000});
  h.observe(10);    // == bound 0: bucket 0 (inclusive upper bound)
  h.observe(11);    // bucket 1
  h.observe(100);   // bucket 1
  h.observe(1000);  // bucket 2
  h.observe(1001);  // +Inf bucket
  h.observe(0);     // bucket 0

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 10u + 11 + 100 + 1000 + 1001);
}

TEST(Metrics, RegistryHandsOutStableIdentities) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("wfc_widgets_total", R"(kind="x")");
  obs::Counter& b = reg.counter("wfc_widgets_total", R"(kind="x")");
  obs::Counter& c = reg.counter("wfc_widgets_total", R"(kind="y")");
  EXPECT_EQ(&a, &b) << "same (name, labels) must be the same series";
  EXPECT_NE(&a, &c) << "distinct labels are distinct series";
  a.inc(5);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, PrometheusTextExpositionShape) {
  MetricsRegistry reg;
  reg.counter("wfc_q_total", "", "Queries").inc(3);
  reg.counter("wfc_q_by_kind_total", R"(kind="solve")").inc(2);
  reg.gauge("wfc_depth", "", "Queue depth").set(4);
  Histogram& h = reg.histogram("wfc_lat_us", {10, 100}, "", "Latency");
  h.observe(5);
  h.observe(50);
  h.observe(500);

  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# HELP wfc_q_total Queries"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wfc_q_total counter"), std::string::npos);
  EXPECT_NE(text.find("wfc_q_total 3"), std::string::npos);
  EXPECT_NE(text.find(R"(wfc_q_by_kind_total{kind="solve"} 2)"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE wfc_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("wfc_depth 4"), std::string::npos);
  // Histogram buckets are CUMULATIVE in the exposition format.
  EXPECT_NE(text.find("# TYPE wfc_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find(R"(wfc_lat_us_bucket{le="10"} 1)"), std::string::npos);
  EXPECT_NE(text.find(R"(wfc_lat_us_bucket{le="100"} 2)"), std::string::npos);
  EXPECT_NE(text.find(R"(wfc_lat_us_bucket{le="+Inf"} 3)"), std::string::npos);
  EXPECT_NE(text.find("wfc_lat_us_sum 555"), std::string::npos);
  EXPECT_NE(text.find("wfc_lat_us_count 3"), std::string::npos);
}

TEST(Metrics, StockBoundsAreStrictlyIncreasing) {
  for (const auto* bounds : {&obs::latency_bounds_us(), &obs::size_bounds()}) {
    ASSERT_FALSE(bounds->empty());
    for (std::size_t i = 1; i < bounds->size(); ++i) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Trace ring.

TEST(Trace, RecordAndSnapshotRoundTrip) {
  TraceSink sink(/*capacity=*/64, /*shards=*/2);
  sink.record(1, SpanKind::kQueueWait, 10, 5, 0);
  sink.record(2, SpanKind::kSearch, 20, 30, 123);
  sink.record(1, SpanKind::kSearch, 15, 40, 99);

  const std::vector<Span> spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(sink.recorded(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
  // Sorted by (trace_id, start).
  EXPECT_EQ(spans[0].trace_id, 1u);
  EXPECT_EQ(spans[0].start_us, 10u);
  EXPECT_EQ(spans[1].trace_id, 1u);
  EXPECT_EQ(spans[1].start_us, 15u);
  EXPECT_EQ(spans[1].arg, 99u);
  EXPECT_EQ(spans[2].trace_id, 2u);
  EXPECT_EQ(spans[2].kind, SpanKind::kSearch);
}

TEST(Trace, RingWrapOverwritesOldestAndCountsDropped) {
  TraceSink sink(/*capacity=*/8, /*shards=*/1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    sink.record(i, SpanKind::kQueueWait, i, 1, 0);
  }
  EXPECT_EQ(sink.recorded(), 100u);
  EXPECT_GT(sink.dropped(), 0u);
  const std::vector<Span> spans = sink.snapshot();
  EXPECT_LE(spans.size(), 8u);
  EXPECT_FALSE(spans.empty());
  // Only the newest spans survive the wrap.
  for (const Span& s : spans) EXPECT_GE(s.trace_id, 92u);
}

TEST(Trace, ConcurrentRecordingLosesNothingWithinCapacity) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  TraceSink sink(/*capacity=*/4096, /*shards=*/kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        sink.record(static_cast<std::uint64_t>(t) * kPerThread + i,
                    SpanKind::kSearch, i, 1, i);
      }
    });
  }
  // Snapshot concurrently with the writers: must not crash or tear.
  for (int i = 0; i < 8; ++i) (void)sink.snapshot();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(sink.recorded(), kThreads * kPerThread);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.snapshot().size(), kThreads * kPerThread);
}

TEST(Trace, ChromeTraceJsonHasEventsCountersAndThreadNames) {
  TraceSink sink(64, 1);
  sink.record(1, SpanKind::kQueueWait, 0, 10, 0);
  sink.record(1, SpanKind::kSearch, 10, 100, 42);
  sink.record(1, SpanKind::kSearchNodes, 60, 0, 4096);  // counter sample
  sink.record(2, SpanKind::kMemoHit, 5, 0, 0);          // instant

  std::ostringstream out;
  sink.write_chrome_trace(out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "complete events for duration spans";
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos)
      << "counter track for search-node checkpoints";
  EXPECT_NE(json.find("thread_name"), std::string::npos)
      << "per-query thread_name metadata";
  EXPECT_NE(json.find("queue_wait"), std::string::npos);
  EXPECT_NE(json.find("search"), std::string::npos);
  // Balanced braces / brackets is a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, DisabledContextIsInertAndScopedSpanRecords) {
  const TraceContext off;
  EXPECT_FALSE(off.enabled());
  off.instant(SpanKind::kMemoHit);
  off.checkpoint(SpanKind::kSearchNodes, 10);
  {
    auto span = off.span(SpanKind::kSearch);
    span.arg = 5;
  }  // must not crash, must not record anywhere

  TraceSink sink(64, 1);
  const TraceContext on(&sink, 77);
  EXPECT_TRUE(on.enabled());
  EXPECT_EQ(on.trace_id(), 77u);
  {
    auto span = on.span(SpanKind::kSearch);
    span.arg = 12345;
  }
  on.instant(SpanKind::kWatchdogKill);
  const std::vector<Span> spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, 77u);
  bool saw_search = false;
  for (const Span& s : spans) {
    if (s.kind == SpanKind::kSearch) {
      saw_search = true;
      EXPECT_EQ(s.arg, 12345u);
    }
  }
  EXPECT_TRUE(saw_search);
}

// ---------------------------------------------------------------------------
// Observer facade.

TEST(Observer, DisabledByDefaultAndHandsOutInertContexts) {
  Observer off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.trace(), nullptr);
  EXPECT_FALSE(off.begin_trace().enabled());

  ObsConfig config;
  config.enabled = true;
  config.trace_capacity = 256;
  config.trace_shards = 2;
  Observer on(config);
  EXPECT_TRUE(on.enabled());
  ASSERT_NE(on.trace(), nullptr);
  const TraceContext a = on.begin_trace();
  const TraceContext b = on.begin_trace();
  EXPECT_TRUE(a.enabled());
  EXPECT_TRUE(b.enabled());
  EXPECT_NE(a.trace_id(), b.trace_id())
      << "trace ids must be unique per query";
}

TEST(Observer, GaugeRefreshRunsBeforePrometheusExport) {
  ObsConfig config;
  config.enabled = true;
  Observer observer(config);
  int refreshes = 0;
  observer.set_gauge_refresh([&] {
    ++refreshes;
    observer.metrics().gauge("wfc_mirror", "", "refreshed").set(99);
  });
  std::ostringstream out;
  observer.write_prometheus(out);
  EXPECT_EQ(refreshes, 1);
  EXPECT_NE(out.str().find("wfc_mirror 99"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service integration: counters reconcile with ServiceStats, spans flow.

TEST(ServiceObs, CountersReconcileWithServiceStatsAndSpansFlow) {
  svc::QueryService::Options options;
  options.workers = 2;
  options.obs.enabled = true;
  svc::QueryService service(options);
  ASSERT_TRUE(service.observer().enabled());

  constexpr int kQueries = 12;
  std::vector<svc::QueryTicket> tickets;
  for (int i = 0; i < kQueries; ++i) {
    tickets.push_back(service.submit(svc::Query::solve(
        i % 2 == 0 ? std::static_pointer_cast<const task::Task>(
                         std::make_shared<task::ConsensusTask>(2, 2))
                   : std::static_pointer_cast<const task::Task>(
                         std::make_shared<task::ApproxAgreementTask>(2, 3)))));
  }
  for (svc::QueryTicket& t : tickets) (void)t.result.get();

  const svc::ServiceStats stats = service.stats();
  obs::MetricsRegistry& reg = service.observer().metrics();
  const std::uint64_t submitted =
      reg.counter("wfc_queries_submitted_total").value();
  std::uint64_t terminal = 0;
  for (int s = 0; s < svc::kNumStatuses; ++s) {
    terminal += reg.counter("wfc_queries_terminal_total",
                            std::string(R"(status=")") +
                                svc::to_json_token(
                                    static_cast<svc::Status>(s)) +
                                R"(")")
                    .value();
  }
  EXPECT_EQ(submitted, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(submitted, stats.submitted);
  EXPECT_EQ(terminal, submitted) << "every query must reach one terminal";
  EXPECT_EQ(reg.counter("wfc_queries_by_kind_total", R"(kind="solve")")
                .value(),
            static_cast<std::uint64_t>(kQueries));

  // Latency histograms saw every executed query.
  EXPECT_EQ(reg.histogram("wfc_e2e_us", obs::latency_bounds_us()).count(),
            static_cast<std::uint64_t>(kQueries));

  // The trace ring holds a queue-wait span and a search span per fresh query
  // (memoized repeats answer inline, so only require presence, not counts).
  ASSERT_NE(service.observer().trace(), nullptr);
  bool saw_queue_wait = false;
  bool saw_search = false;
  for (const Span& s : service.observer().trace()->snapshot()) {
    saw_queue_wait |= s.kind == SpanKind::kQueueWait;
    saw_search |= s.kind == SpanKind::kSearch;
  }
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_search);
}

TEST(ServiceObs, DisabledObserverKeepsRegistryEmptyAndTracesOff) {
  svc::QueryService service;  // ObsConfig::enabled defaults to false
  EXPECT_FALSE(service.observer().enabled());
  EXPECT_EQ(service.observer().trace(), nullptr);
  auto ticket = service.submit(svc::Query::solve(
      std::make_shared<task::ConsensusTask>(2, 2)));
  (void)ticket.result.get();
  // The registry was never populated: a Prometheus export is header-free.
  std::ostringstream out;
  service.observer().write_prometheus(out);
  EXPECT_EQ(out.str().find("wfc_queries_submitted_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSONL round trips: envelopes, legacy routing, metrics / trace ops.

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

int run_serve(const std::string& input, const svc::ServeConfig& config,
              std::vector<std::string>* out_lines, std::string* err_text) {
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream err;
  const int errors = svc::run_jsonl_server(in, out, err, config);
  *out_lines = lines_of(out.str());
  if (err_text != nullptr) *err_text = err.str();
  return errors;
}

TEST(JsonlRoundTrip, LegacyEnvelopeAvailableViaFlag) {
  svc::ServeConfig config;
  config.stats_at_eof = false;
  // Since PR 5 the v2 envelope is the default; --legacy flips this flag.
  ASSERT_FALSE(config.legacy_envelope);
  config.legacy_envelope = true;
  std::vector<std::string> out;
  const int errors = run_serve(
      R"({"op":"solve","task":"consensus","procs":2,"values":2})"
      "\n"
      R"({"op":"solve","task":"approx","procs":2,"grid":3})"
      "\n",
      config, &out, nullptr);
  EXPECT_EQ(errors, 0);
  ASSERT_EQ(out.size(), 2u);
  // Legacy: the DOMAIN verdict rides in "status", no "verdict" key.
  const auto first = svc::parse_flat_json(out[0]);
  EXPECT_EQ(first.at("status"), "UNSOLVABLE");
  EXPECT_EQ(first.count("verdict"), 0u);
  const auto second = svc::parse_flat_json(out[1]);
  EXPECT_EQ(second.at("status"), "SOLVABLE");
}

TEST(JsonlRoundTrip, V2EnvelopeSplitsTransportStatusFromVerdict) {
  svc::ServeConfig config;
  config.stats_at_eof = false;
  config.legacy_envelope = false;
  std::vector<std::string> out;
  const int errors = run_serve(
      R"({"id":"q1","op":"solve","task":"consensus","procs":2,"values":2})"
      "\n"
      R"({"id":"q2","op":"emulate","procs":2,"shots":1})"
      "\n"
      R"({"id":"q3","op":"check","target":"sds","procs":2,"rounds":2})"
      "\n"
      R"({"id":"q4","op":"solve","task":"consensus","procs":0})"
      "\n",
      config, &out, nullptr);
  EXPECT_EQ(errors, 1) << "q4 is malformed and must count as an error line";
  ASSERT_EQ(out.size(), 4u);

  const auto q1 = svc::parse_flat_json(out[0]);
  EXPECT_EQ(q1.at("id"), "q1");
  EXPECT_EQ(q1.at("status"), "ok");
  EXPECT_EQ(q1.at("verdict"), "UNSOLVABLE");
  const auto q2 = svc::parse_flat_json(out[1]);
  EXPECT_EQ(q2.at("status"), "ok");
  EXPECT_EQ(q2.at("verdict"), "OK");
  const auto q3 = svc::parse_flat_json(out[2]);
  EXPECT_EQ(q3.at("status"), "ok");
  ASSERT_EQ(q3.count("verdict"), 1u);
  // Error lines are identical in both envelopes: lowercase taxonomy.
  const auto q4 = svc::parse_flat_json(out[3]);
  EXPECT_EQ(q4.at("status"), "invalid_argument");
  EXPECT_EQ(q4.count("verdict"), 0u);
}

TEST(JsonlRoundTrip, LegacyTaskLinesRouteWithOneDeprecationNote) {
  svc::ServeConfig config;
  config.stats_at_eof = false;
  std::vector<std::string> out;
  std::string err;
  const int errors = run_serve(
      R"({"task":"consensus","procs":2,"values":2})"
      "\n"
      R"({"task":"approx","procs":2,"grid":3})"
      "\n",
      config, &out, &err);
  EXPECT_EQ(errors, 0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(svc::parse_flat_json(out[0]).at("verdict"), "UNSOLVABLE");
  EXPECT_EQ(svc::parse_flat_json(out[1]).at("verdict"), "SOLVABLE");
  // The deprecation note prints once per run, not once per line.
  std::size_t notes = 0;
  for (std::size_t pos = err.find("deprecated"); pos != std::string::npos;
       pos = err.find("deprecated", pos + 1)) {
    ++notes;
  }
  EXPECT_EQ(notes, 1u) << err;
}

TEST(JsonlRoundTrip, MetricsOpReconcilesAndWritesPrometheusFile) {
  const std::string prom_path =
      testing::TempDir() + "/wfc_obs_test_prom.txt";
  svc::ServeConfig config;
  config.stats_at_eof = false;
  std::vector<std::string> out;
  const int errors = run_serve(
      R"({"op":"solve","task":"consensus","procs":2,"values":2})"
      "\n"
      R"({"op":"solve","task":"approx","procs":2,"grid":3})"
      "\n"
      R"({"id":"m","op":"metrics","path":")" +
          prom_path + R"("})"
                      "\n",
      config, &out, nullptr);
  EXPECT_EQ(errors, 0);
  ASSERT_EQ(out.size(), 3u);

  const auto m = svc::parse_flat_json(out[2]);
  EXPECT_EQ(m.at("id"), "m");
  EXPECT_EQ(m.at("op"), "metrics");
  EXPECT_EQ(m.at("status"), "ok");
  EXPECT_EQ(m.at("submitted"), "2");
  EXPECT_EQ(m.at("terminal"), "2");
  EXPECT_EQ(m.at("stats_submitted"), "2");
  EXPECT_EQ(m.at("reconciles"), "true");

  std::ifstream prom(prom_path);
  ASSERT_TRUE(prom.good()) << "metrics op must write the exposition file";
  std::stringstream text;
  text << prom.rdbuf();
  EXPECT_NE(text.str().find("# TYPE wfc_queries_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.str().find("wfc_queries_submitted_total 2"),
            std::string::npos);
  EXPECT_NE(text.str().find(R"(wfc_queries_terminal_total{status="ok"} 2)"),
            std::string::npos);
}

TEST(JsonlRoundTrip, TraceOpWritesLoadableChromeTrace) {
  const std::string trace_path =
      testing::TempDir() + "/wfc_obs_test_trace.json";
  svc::ServeConfig config;
  config.stats_at_eof = false;
  std::vector<std::string> out;
  const int errors = run_serve(
      R"({"op":"solve","task":"consensus","procs":2,"values":2})"
      "\n"
      R"({"op":"trace","path":")" +
          trace_path + R"("})"
                       "\n",
      config, &out, nullptr);
  EXPECT_EQ(errors, 0);
  ASSERT_EQ(out.size(), 2u);
  const auto t = svc::parse_flat_json(out[1]);
  EXPECT_EQ(t.at("op"), "trace");
  EXPECT_EQ(t.at("status"), "ok");
  EXPECT_EQ(t.at("path"), trace_path);
  EXPECT_GT(std::stoull(t.at("spans")), 0u);

  std::ifstream file(trace_path);
  ASSERT_TRUE(file.good());
  std::stringstream json;
  json << file.rdbuf();
  EXPECT_NE(json.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.str().find("queue_wait"), std::string::npos);
}

TEST(JsonlRoundTrip, ObsOpsAnswerInvalidArgumentWhenLayerIsOff) {
  svc::ServeConfig config;
  config.stats_at_eof = false;
  config.observability = false;  // honour service.obs.enabled == false
  std::vector<std::string> out;
  const int errors = run_serve(
      R"({"op":"metrics"})"
      "\n"
      R"({"op":"trace","path":"/tmp/never-written.json"})"
      "\n",
      config, &out, nullptr);
  EXPECT_EQ(errors, 2);
  ASSERT_EQ(out.size(), 2u);
  for (const std::string& line : out) {
    EXPECT_EQ(svc::parse_flat_json(line).at("status"), "invalid_argument")
        << line;
  }
}

TEST(JsonlRoundTrip, UnknownOpsAreRejectedInline) {
  svc::ServeConfig config;
  config.stats_at_eof = false;
  std::vector<std::string> out;
  const int errors = run_serve(
      R"({"id":"x","op":"bogus"})"
      "\n",
      config, &out, nullptr);
  EXPECT_EQ(errors, 1);
  ASSERT_EQ(out.size(), 1u);
  const auto r = svc::parse_flat_json(out[0]);
  EXPECT_EQ(r.at("id"), "x");
  EXPECT_EQ(r.at("status"), "invalid_argument");
  EXPECT_NE(r.at("error").find("unknown op"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Typed request API.

TEST(TypedRequests, KindTracksVariantAlternativeAndAsDowncasts) {
  svc::Query solve = svc::Query::solve(
      std::make_shared<task::ConsensusTask>(2, 2));
  EXPECT_EQ(solve.kind(), svc::Query::Kind::kSolve);
  ASSERT_NE(solve.as<svc::SolveRequest>(), nullptr);
  EXPECT_EQ(solve.as<svc::CheckRequest>(), nullptr);

  svc::Query emulate = svc::Query::emulate(/*procs=*/3, /*shots=*/2);
  EXPECT_EQ(emulate.kind(), svc::Query::Kind::kEmulate);
  ASSERT_NE(emulate.as<svc::EmulateRequest>(), nullptr);
  EXPECT_EQ(emulate.as<svc::EmulateRequest>()->procs, 3);

  svc::CheckRequest check;
  check.procs = 2;
  check.rounds = 2;
  svc::Query checked = svc::Query::check(check);
  EXPECT_EQ(checked.kind(), svc::Query::Kind::kCheck);
  EXPECT_NE(checked.as<svc::CheckRequest>(), nullptr);
}

}  // namespace
}  // namespace wfc
