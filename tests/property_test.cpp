// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P): the
// paper's invariants checked across a grid of instance sizes, schedules,
// and seeds rather than at single points.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/wfc.hpp"

namespace wfc {
namespace {

// Every randomized sweep below derives from this one seed, overridable with
// WFC_TEST_SEED and logged at suite start so failures can be replayed.
const std::uint64_t kSuiteSeed = logged_test_seed("property_test", 0xABCDu);

// ---------------------------------------------------------------------------
// SDS^b(s^n) structural properties over the (n, b) grid.
// ---------------------------------------------------------------------------

class SdsProperties : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  [[nodiscard]] int n_plus_1() const { return std::get<0>(GetParam()); }
  [[nodiscard]] int level() const { return std::get<1>(GetParam()); }
};

TEST_P(SdsProperties, IsGeometricSubdivision) {
  topo::ChromaticComplex base = topo::base_simplex(n_plus_1());
  topo::ChromaticComplex sds = topo::iterated_sds(base, level());
  topo::SubdivisionReport rep = topo::check_subdivision(sds, base, 128);
  EXPECT_TRUE(rep.ok()) << "volume ratio " << rep.volume_ratio;
}

TEST_P(SdsProperties, IsPseudomanifoldWithBoundary) {
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1()), level());
  EXPECT_TRUE(topo::check_pseudomanifold(sds).ok());
}

TEST_P(SdsProperties, FacetCountIsFubiniPower) {
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1()), level());
  std::uint64_t expected = 1;
  for (int i = 0; i < level(); ++i) expected *= topo::fubini(n_plus_1());
  EXPECT_EQ(sds.num_facets(), expected);
}

TEST_P(SdsProperties, EulerCharacteristicIsOne) {
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1()), level());
  EXPECT_EQ(sds.euler_characteristic(), 1);
}

TEST_P(SdsProperties, EveryFacetIsRainbow) {
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1()), level());
  for (const topo::Simplex& f : sds.facets()) {
    EXPECT_EQ(sds.colors_of(f), ColorSet::full(n_plus_1()));
  }
}

TEST_P(SdsProperties, ImmediateSnapshotRelations) {
  // The §3.5 one-shot relations hold facet-wise through carriers -- for a
  // SINGLE shot.  (For b > 1 the stored carrier accumulates all rounds, so
  // round-b views are not recoverable from it; the b > 1 semantics is
  // covered by the LemmaThreeTwo isomorphism suite instead.)
  if (level() != 1) {
    GTEST_SKIP() << "carrier == view only holds for the one-shot complex";
  }
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1()), level());
  for (const topo::Simplex& f : sds.facets()) {
    std::map<Color, ColorSet> views;
    for (topo::VertexId v : f) {
      views[sds.vertex(v).color] = sds.vertex(v).carrier;
    }
    for (const auto& [i, si] : views) {
      EXPECT_TRUE(si.contains(i));
      for (const auto& [j, sj] : views) {
        EXPECT_TRUE(si.subset_of(sj) || sj.subset_of(si));
        if (sj.contains(i)) {
          EXPECT_TRUE(si.subset_of(sj));
        }
      }
    }
  }
}

TEST_P(SdsProperties, BoundaryIsClosedPseudomanifold) {
  // boundary(SDS^b(s^n)) is an (n-1)-sphere: closed (every ridge in exactly
  // two facets), connected, Euler characteristic 1 + (-1)^(n-1).
  if (n_plus_1() < 3) GTEST_SKIP() << "boundary of an edge is two points";
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1()), level());
  topo::ChromaticComplex bd = topo::boundary_complex(sds);
  EXPECT_EQ(bd.dimension(), n_plus_1() - 2);
  topo::PseudomanifoldReport rep = topo::check_pseudomanifold(bd);
  EXPECT_TRUE(rep.pure);
  EXPECT_TRUE(rep.ridge_degree_ok);
  EXPECT_EQ(rep.boundary_ridges, 0u) << "boundary must be closed";
  EXPECT_EQ(topo::num_connected_components(bd), 1);
  const long long expected_chi = (n_plus_1() % 2 == 0) ? 2 : 0;
  EXPECT_EQ(bd.euler_characteristic(), expected_chi);
}

TEST_P(SdsProperties, SpernerParity) {
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1()), level());
  Rng rng(kSuiteSeed * static_cast<unsigned>(n_plus_1() + 7 * level()));
  for (int trial = 0; trial < 10; ++trial) {
    topo::Labeling lab = topo::random_sperner_labeling(sds, rng);
    EXPECT_TRUE(topo::sperner_parity_holds(sds, lab));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SdsProperties,
    ::testing::Values(std::tuple{2, 1}, std::tuple{2, 2}, std::tuple{2, 3},
                      std::tuple{2, 4}, std::tuple{3, 1}, std::tuple{3, 2},
                      std::tuple{4, 1}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param) - 1) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Lemma 3.2/3.3 isomorphism over the grid.
// ---------------------------------------------------------------------------

class LemmaThreeTwo : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LemmaThreeTwo, ProtocolComplexIsSds) {
  const auto [n_plus_1, b] = GetParam();
  proto::IsomorphismReport rep =
      proto::verify_iis_complex_is_sds(topo::base_simplex(n_plus_1), b);
  EXPECT_TRUE(rep.ok()) << rep.protocol_vertices << " vs " << rep.sds_vertices;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LemmaThreeTwo,
    ::testing::Values(std::tuple{2, 1}, std::tuple{2, 2}, std::tuple{2, 3},
                      std::tuple{2, 4}, std::tuple{3, 1}, std::tuple{3, 2},
                      std::tuple{4, 1}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param) - 1) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Emulation histories over (procs, shots, adversary, seed).
// ---------------------------------------------------------------------------

struct EmulationCase {
  int procs;
  int shots;
  int adversary;  // 0 sync, 1 seq, 2 rot, 3 random
  std::uint64_t seed;
};

class EmulationProperties : public ::testing::TestWithParam<EmulationCase> {};

TEST_P(EmulationProperties, HistoryValid) {
  const EmulationCase& c = GetParam();
  emu::FullInfoClient client(c.shots);
  std::unique_ptr<rt::Adversary> adv;
  switch (c.adversary) {
    case 0:
      adv = std::make_unique<rt::SynchronousAdversary>();
      break;
    case 1:
      adv = std::make_unique<rt::SequentialAdversary>();
      break;
    case 2:
      adv = std::make_unique<rt::RotatingAdversary>();
      break;
    default:
      adv = std::make_unique<rt::RandomAdversary>(c.seed ^ kSuiteSeed);
      break;
  }
  emu::EmulationResult res = emu::run_emulation_simulated(
      c.procs, *adv, 128 + 32 * c.procs * c.shots, client.init(),
      client.on_scan());
  emu::HistoryReport rep = emu::check_history(res);
  EXPECT_TRUE(rep.ok()) << rep.violation;
  for (const auto& log : res.ops) {
    EXPECT_EQ(log.size(), 2u * static_cast<unsigned>(c.shots));
  }
}

std::vector<EmulationCase> emulation_cases() {
  std::vector<EmulationCase> out;
  for (int procs : {2, 3, 5}) {
    for (int shots : {1, 3}) {
      for (int adv : {0, 1, 2}) out.push_back({procs, shots, adv, 0});
      for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        out.push_back({procs, shots, 3, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, EmulationProperties,
                         ::testing::ValuesIn(emulation_cases()),
                         [](const auto& info) {
                           const EmulationCase& c = info.param;
                           return "p" + std::to_string(c.procs) + "_k" +
                                  std::to_string(c.shots) + "_a" +
                                  std::to_string(c.adversary) + "_s" +
                                  std::to_string(c.seed);
                         });

// ---------------------------------------------------------------------------
// Approximate agreement: minimal level is ceil(log3 grid) for 2 processors.
// ---------------------------------------------------------------------------

class ApproxAgreementLevels : public ::testing::TestWithParam<int> {};

TEST_P(ApproxAgreementLevels, MinimalLevelIsLogThree) {
  const int grid = GetParam();
  int expected = 0;
  for (int reach = 1; reach < grid; reach *= 3) ++expected;
  task::ApproxAgreementTask t(2, grid);
  task::SolveResult r = task::solve(t, expected);
  ASSERT_EQ(r.status, task::Solvability::kSolvable) << "grid=" << grid;
  EXPECT_EQ(r.level, expected) << "grid=" << grid;
  if (expected > 0) {
    // One level less must be exhaustively refuted.
    EXPECT_EQ(task::solve_at_level(t, expected - 1).status,
              task::Solvability::kUnsolvable);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ApproxAgreementLevels,
                         ::testing::Values(1, 2, 3, 4, 8, 9, 10, 27),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Immediate snapshot properties over processor counts and both stacks.
// ---------------------------------------------------------------------------

class ImmediateSnapshotStacks
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ImmediateSnapshotStacks, SequentialArrivalProperties) {
  const auto [procs, from_atomic] = GetParam();
  auto contains = [](const auto& s, int id) {
    return std::any_of(s.begin(), s.end(),
                       [id](const auto& p) { return p.first == id; });
  };
  std::vector<std::vector<std::pair<int, int>>> outs(
      static_cast<std::size_t>(procs));
  if (from_atomic) {
    reg::ImmediateSnapshotFromAtomic<int> is(procs);
    for (int p = 0; p < procs; ++p) outs[static_cast<std::size_t>(p)] = is.write_read(p, p);
  } else {
    reg::ImmediateSnapshot<int> is(procs);
    for (int p = 0; p < procs; ++p) outs[static_cast<std::size_t>(p)] = is.write_read(p, p);
  }
  for (int i = 0; i < procs; ++i) {
    EXPECT_TRUE(contains(outs[static_cast<std::size_t>(i)], i));
    for (int j = 0; j < procs; ++j) {
      const auto& si = outs[static_cast<std::size_t>(i)];
      const auto& sj = outs[static_cast<std::size_t>(j)];
      auto subset = [&](const auto& a, const auto& b) {
        return std::all_of(a.begin(), a.end(), [&](const auto& e) {
          return contains(b, e.first);
        });
      };
      EXPECT_TRUE(subset(si, sj) || subset(sj, si));
      if (contains(sj, i)) {
          EXPECT_TRUE(subset(si, sj));
        }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ImmediateSnapshotStacks,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<1>(info.param) ? "atomic" : "registers") +
             "_p" + std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace wfc
