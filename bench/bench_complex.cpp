// E1 / E2 / E10 -- Lemmas 3.2 & 3.3 and the growth of the iterated
// standard chromatic subdivision.
//
// Regenerates, as benchmark counters:
//   * facet/vertex counts of SDS^b(s^n)   (the "table" of complex sizes);
//   * construction time of SDS^b;
//   * time to verify the protocol-complex <-> SDS isomorphism from live
//     execution enumeration (the machine-checked lemma).
#include <benchmark/benchmark.h>

#include "protocol/protocol_complex.hpp"
#include "topology/subdivision.hpp"

namespace {

using namespace wfc;

void BM_SdsConstruction(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int b = static_cast<int>(state.range(1));
  topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
  std::size_t facets = 0, vertices = 0;
  for (auto _ : state) {
    topo::ChromaticComplex sds = topo::iterated_sds(base, b);
    facets = sds.num_facets();
    vertices = sds.num_vertices();
    benchmark::DoNotOptimize(sds);
  }
  state.counters["facets"] = static_cast<double>(facets);
  state.counters["vertices"] = static_cast<double>(vertices);
}
BENCHMARK(BM_SdsConstruction)
    ->ArgsProduct({{2, 3, 4}, {1, 2}})
    ->Args({2, 3})
    ->Args({2, 4})
    ->Args({3, 3})
    ->Unit(benchmark::kMillisecond);

void BM_BsdConstruction(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int b = static_cast<int>(state.range(1));
  topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
  std::size_t facets = 0;
  for (auto _ : state) {
    topo::ChromaticComplex bsd = topo::iterated_bsd(base, b);
    facets = bsd.num_facets();
    benchmark::DoNotOptimize(bsd);
  }
  state.counters["facets"] = static_cast<double>(facets);
}
BENCHMARK(BM_BsdConstruction)
    ->ArgsProduct({{2, 3}, {1, 2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

// Lemma 3.2/3.3: protocol complex from execution enumeration == SDS^b.
void BM_Lemma33Verification(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int b = static_cast<int>(state.range(1));
  topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
  bool ok = false;
  std::size_t facets = 0;
  for (auto _ : state) {
    proto::IsomorphismReport rep = proto::verify_iis_complex_is_sds(base, b);
    ok = rep.ok();
    facets = rep.sds_facets;
    benchmark::DoNotOptimize(rep);
  }
  state.counters["isomorphic"] = ok ? 1 : 0;
  state.counters["facets"] = static_cast<double>(facets);
}
BENCHMARK(BM_Lemma33Verification)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

// One-shot atomic-snapshot protocol complex vs SDS: the snapshot model
// admits strictly more one-round executions (non-immediate snapshots), the
// §3.4 containment.
void BM_SnapshotComplexVsSds(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  std::size_t snap_facets = 0, sds_facets = 0;
  for (auto _ : state) {
    topo::ChromaticComplex snap =
        proto::build_snapshot_protocol_complex(n_plus_1, 1);
    snap_facets = snap.num_facets();
    sds_facets = topo::standard_chromatic_subdivision(
                     topo::base_simplex(n_plus_1))
                     .num_facets();
    benchmark::DoNotOptimize(snap);
  }
  state.counters["snapshot_facets"] = static_cast<double>(snap_facets);
  state.counters["sds_facets"] = static_cast<double>(sds_facets);
}
BENCHMARK(BM_SnapshotComplexVsSds)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
