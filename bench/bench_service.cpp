// E16 -- the service layer quantitatively.  Three regimes over the same
// repeated-task batch, all measured in wall time (UseRealTime):
//
//   * cold      -- plain single-threaded task::solve, a fresh instance per
//                  query: every query pays subdivision + search;
//   * warm-chain -- QueryService with a fresh instance per query: the SDS
//                  cache shares towers, searches still run (~2x);
//   * warm-memo -- QueryService re-asked the SAME task instance: the result
//                  memo replays the definitive verdict, no search (this is
//                  the serving sweet spot, and the PR 1 acceptance bar of
//                  >= 5x throughput over cold lands here with a wide
//                  margin -- compare queries_per_s across the rows).
//
// Worker counts 1/2/4/8 are swept for the service regimes; on a single
// hardware thread they mostly show that contention stays flat.
//
// BM_ObsOverhead (PR 4) prices the wfc::obs layer: Arg 0 runs with
// observability disabled (the regression gate: <= 3% vs pre-obs throughput)
// and Arg 1 with tracing + metrics live.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "service/query_service.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"

namespace {

using namespace wfc;

constexpr int kBatch = 24;    // queries per timed batch
constexpr int kMaxLevel = 2;  // consensus(2,2): refuted at levels 0..2

std::shared_ptr<task::Task> fresh_task() {
  return std::make_shared<task::ConsensusTask>(2, 2);
}

void report_rate(benchmark::State& state) {
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate);
}

/// Baseline: one thread, no service -- each query pays the full cost.
void BM_ColdSequentialSolve(benchmark::State& state) {
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      task::SolveResult r = task::solve(*fresh_task(), kMaxLevel);
      benchmark::DoNotOptimize(r);
    }
  }
  report_rate(state);
}
BENCHMARK(BM_ColdSequentialSolve)->UseRealTime()->Unit(benchmark::kMillisecond);

void run_service_batch(benchmark::State& state, svc::QueryService& service,
                       const std::vector<std::shared_ptr<task::Task>>& batch) {
  svc::QueryOptions qopts;
  qopts.max_level = kMaxLevel;
  for (auto _ : state) {
    std::vector<svc::QueryTicket> tickets;
    tickets.reserve(batch.size());
    for (const auto& t : batch) {
      tickets.push_back(service.submit(svc::Query::solve(t, qopts)));
    }
    for (svc::QueryTicket& ticket : tickets) {
      svc::QueryResult r = ticket.result.get();
      benchmark::DoNotOptimize(r);
    }
  }
  report_rate(state);
}

/// Distinct task instances per query: only the chain cache helps (the
/// searches rerun), isolating the subdivision-sharing win.
void BM_WarmChainCacheOnly(benchmark::State& state) {
  svc::QueryService::Options options;
  options.workers = static_cast<int>(state.range(0));
  options.result_memo_entries = 0;  // chain cache only
  svc::QueryService service(options);
  std::vector<std::shared_ptr<task::Task>> batch;
  for (int i = 0; i < kBatch; ++i) batch.push_back(fresh_task());
  // Warm the chain cache outside the timed region.
  svc::QueryOptions qopts;
  qopts.max_level = kMaxLevel;
  service.submit(svc::Query::solve(fresh_task(), qopts)).result.get();

  run_service_batch(state, service, batch);
  const svc::ServiceStats stats = service.stats();
  state.counters["cache_hit_pct"] =
      100.0 * static_cast<double>(stats.cache.hits) /
      static_cast<double>(stats.cache.hits + stats.cache.misses +
                          stats.cache.extensions);
}
BENCHMARK(BM_WarmChainCacheOnly)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The same task instance re-asked kBatch times: after the first solve the
/// result memo answers inline.  This is the repeated-task serving regime.
void BM_WarmResultMemo(benchmark::State& state) {
  svc::QueryService::Options options;
  options.workers = static_cast<int>(state.range(0));
  svc::QueryService service(options);
  std::shared_ptr<task::Task> t = fresh_task();
  std::vector<std::shared_ptr<task::Task>> batch(kBatch, t);
  svc::QueryOptions qopts;
  qopts.max_level = kMaxLevel;
  service.submit(svc::Query::solve(t, qopts)).result.get();  // warm memo + cache

  run_service_batch(state, service, batch);
  state.counters["result_hits"] =
      static_cast<double>(service.stats().result_hits);
}
BENCHMARK(BM_WarmResultMemo)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// PR 4 acceptance: the observability layer must be near-free when disabled
/// (the default) and cheap when enabled.  The same fresh-instance batch is
/// run with obs off (Arg 0) and on (Arg 1); compare queries_per_s across the
/// two rows -- the disabled row is the regression gate (<= 3% vs pre-obs),
/// and the enabled row prices the spans + counters actually recorded.
void BM_ObsOverhead(benchmark::State& state) {
  svc::QueryService::Options options;
  options.workers = 4;
  options.result_memo_entries = 0;  // keep real searches in the loop
  options.obs.enabled = state.range(0) != 0;
  svc::QueryService service(options);
  std::vector<std::shared_ptr<task::Task>> batch;
  for (int i = 0; i < kBatch; ++i) batch.push_back(fresh_task());
  svc::QueryOptions qopts;
  qopts.max_level = kMaxLevel;
  service.submit(svc::Query::solve(fresh_task(), qopts)).result.get();  // warm the cache

  run_service_batch(state, service, batch);
  if (service.observer().enabled()) {
    state.counters["spans"] = static_cast<double>(
        service.observer().trace()->recorded());
  }
}
BENCHMARK(BM_ObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Mixed repeated batch: four canonical families interleaved, each repeated
/// (as a JSONL client would produce after interning); hits both layers.
void BM_WarmServiceMixedBatch(benchmark::State& state) {
  svc::QueryService::Options options;
  options.workers = 4;
  svc::QueryService service(options);
  std::vector<std::shared_ptr<task::Task>> families = {
      std::make_shared<task::ConsensusTask>(2, 2),
      std::make_shared<task::RenamingTask>(2, 2),
      std::make_shared<task::ApproxAgreementTask>(2, 3),
      std::make_shared<task::ApproxAgreementTask>(2, 9),
  };
  std::vector<std::shared_ptr<task::Task>> batch;
  for (int i = 0; i < kBatch; ++i) batch.push_back(families[i % 4]);
  svc::QueryOptions qopts;
  qopts.max_level = kMaxLevel;
  for (const auto& t : families) service.submit(svc::Query::solve(t, qopts)).result.get();

  run_service_batch(state, service, batch);
}
BENCHMARK(BM_WarmServiceMixedBatch)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
