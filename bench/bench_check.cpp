// E20 -- the checker subsystem quantitatively: how fast the exhaustive
// sweeps run, since they gate CI.  Three rates:
//
//   * schedules_per_s  -- SDS-membership sweeps (Lemmas 3.2/3.3) over the
//                         acceptance grid's hardest cells, with and without
//                         crash injection;
//   * histories_per_s  -- Wing-Gong linearizability checks over a fixed
//                         batch of histories pre-recorded from exhaustive
//                         step interleavings of the real AtomicSnapshot;
//   * conformance executions_per_s -- the §4 emulation DFS with crashes.
//
// CI runs this with --benchmark_out=BENCH_check.json so the rates are
// tracked per commit.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "check/conformance.hpp"
#include "check/explorer.hpp"
#include "check/lin_check.hpp"
#include "check/sds_check.hpp"
#include "check/step_driver.hpp"
#include "registers/atomic_snapshot.hpp"

namespace {

using namespace wfc;

/// SDS membership: n processors, b rounds, t crashes per execution.
void BM_SdsMembershipSweep(benchmark::State& state) {
  chk::ExploreOptions opt;
  opt.n_procs = static_cast<int>(state.range(0));
  opt.rounds = static_cast<int>(state.range(1));
  opt.max_crashes = static_cast<int>(state.range(2));
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    const chk::SdsCheckReport report = chk::check_views_in_sds(opt);
    if (!report.ok) state.SkipWithError("SDS membership violated");
    schedules += report.explored.executions;
  }
  state.counters["schedules_per_s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_SdsMembershipSweep)
    ->Args({3, 2, 0})   // 169 schedules
    ->Args({3, 2, 1})   // 313
    ->Args({4, 1, 0})   // 75
    ->Args({4, 1, 1})   // 750-ish: every crash placement
    ->Unit(benchmark::kMillisecond);

/// Wing-Gong over a pre-recorded batch: one history per step interleaving
/// of update(0) racing scan(1) on the real AtomicSnapshot.
void BM_LinearizeHistories(benchmark::State& state) {
  using Rec = chk::RecordingSnapshot<reg::AtomicSnapshot<int>>;
  std::vector<chk::SnapshotHistory> batch;
  std::shared_ptr<Rec> rec;
  chk::for_each_step_interleaving(
      2,
      [&](chk::StepDriver& driver) {
        rec = std::make_shared<Rec>(2);
        driver.spawn(0, [rec = rec] { rec->update(0, 1); });
        driver.spawn(1, [rec = rec] { (void)rec->scan(1); });
      },
      [&](const std::vector<int>&) { batch.push_back(rec->history()); });

  std::uint64_t histories = 0;
  for (auto _ : state) {
    for (const chk::SnapshotHistory& h : batch) {
      const chk::LinearizeReport report = chk::check_linearizable_snapshot(h);
      if (!report.linearizable) state.SkipWithError("history not linearizable");
      benchmark::DoNotOptimize(report.states_explored);
    }
    histories += batch.size();
  }
  state.counters["histories_per_s"] = benchmark::Counter(
      static_cast<double>(histories), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_LinearizeHistories)->Unit(benchmark::kMillisecond);

/// §4 conformance DFS: every schedule prefix + crash placement, each
/// completed and history-checked.
void BM_EmulationConformance(benchmark::State& state) {
  chk::ConformanceOptions opt;
  opt.n_procs = static_cast<int>(state.range(0));
  opt.shots = 1;
  opt.explore_rounds = static_cast<int>(state.range(1));
  opt.max_crashes = static_cast<int>(state.range(2));
  std::uint64_t executions = 0;
  for (auto _ : state) {
    const chk::ConformanceReport report =
        chk::check_emulation_conformance(opt);
    if (!report.ok) state.SkipWithError("emulation conformance violated");
    executions += report.explored.executions;
  }
  state.counters["executions_per_s"] = benchmark::Counter(
      static_cast<double>(executions), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_EmulationConformance)
    ->Args({2, 2, 1})
    ->Args({3, 1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
