// E8 -- the Sperner engine behind the (n+1, n)-set-consensus impossibility:
// panchromatic-facet counting over SDS^b(s^n) for random Sperner labelings.
// Counters confirm the parity invariant (all counts odd) at every size the
// bench touches, i.e. the impossibility holds at every level measured.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "topology/sperner.hpp"
#include "topology/subdivision.hpp"

namespace {

using namespace wfc;

void BM_SpernerCount(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int b = static_cast<int>(state.range(1));
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1), b);
  Rng rng(42);
  bool all_odd = true;
  std::uint64_t last = 0;
  for (auto _ : state) {
    topo::Labeling lab = topo::random_sperner_labeling(sds, rng);
    last = topo::count_panchromatic(sds, lab);
    all_odd = all_odd && (last % 2 == 1);
    benchmark::DoNotOptimize(last);
  }
  state.counters["facets"] = static_cast<double>(sds.num_facets());
  state.counters["all_odd"] = all_odd ? 1 : 0;
  state.counters["last_count"] = static_cast<double>(last);
}
BENCHMARK(BM_SpernerCount)
    ->ArgsProduct({{2, 3}, {1, 2, 3}})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Unit(benchmark::kMicrosecond);

void BM_MinCarrierLabeling(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int b = static_cast<int>(state.range(1));
  topo::ChromaticComplex sds =
      topo::iterated_sds(topo::base_simplex(n_plus_1), b);
  std::uint64_t count = 0;
  for (auto _ : state) {
    topo::Labeling lab = topo::min_carrier_labeling(sds);
    count = topo::count_panchromatic(sds, lab);
    benchmark::DoNotOptimize(count);
  }
  // "Adopt the smallest id you saw" has exactly one panchromatic simplex.
  state.counters["panchromatic"] = static_cast<double>(count);
}
BENCHMARK(BM_MinCarrierLabeling)
    ->ArgsProduct({{2, 3, 4}, {1, 2}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
