// E24 -- the wait-free data plane quantitatively: the mutex baselines the
// service grew up with against their wfc::wf replacements, swept across
// thread counts.  Three contended primitives, measured head to head:
//
//   * counter        -- one mutex-guarded uint64 vs wf::Counter (sharded
//                       relaxed cells);
//   * cache_hot_hits -- a mutex + std::map + LRU-list cache (the seed
//                       SdsCache index shape) vs wf::ClockCache, all-hits
//                       working set (the service hot path once a tower is
//                       resident);
//   * cache_churn    -- the same pair with a working set twice the cache
//                       bound, so every thread also races eviction.
//
// The claim under test: the mutex side LOSES absolute throughput as
// threads grow (every hit serializes on one lock and one LRU splice),
// while the wf side holds or scales.  CI runs this with
// --benchmark_out=BENCH_wf.json; EXPERIMENTS.md E24 records a local run.
// ops_per_s counts per-iteration operations summed over all threads.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <list>
#include <map>
#include <mutex>

#include "wf/clock_cache.hpp"
#include "wf/counter.hpp"

namespace {

using namespace wfc;

// ---------------------------------------------------------------------------
// Counters

struct MutexCounter {
  std::mutex mu;
  std::uint64_t v = 0;
  void inc() {
    std::lock_guard<std::mutex> lock(mu);
    ++v;
  }
};

void BM_MutexCounter(benchmark::State& state) {
  static MutexCounter counter;
  for (auto _ : state) counter.inc();
  state.counters["ops_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MutexCounter)->ThreadRange(1, 64)->UseRealTime();

void BM_WfCounter(benchmark::State& state) {
  static wf::Counter counter;
  for (auto _ : state) counter.inc();
  state.counters["ops_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WfCounter)->ThreadRange(1, 64)->UseRealTime();

// ---------------------------------------------------------------------------
// Caches

constexpr std::size_t kCacheBound = 128;
constexpr std::uint64_t kHotKeys = 64;    // all resident: pure hit path
constexpr std::uint64_t kChurnKeys = 256; // 2x the bound: constant eviction

/// The seed SdsCache index shape: exact LRU under one mutex.  Every hit
/// splices the recency list; every insert past the bound pops the tail.
class MutexLruCache {
 public:
  bool get_or_insert(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      return true;
    }
    lru_.push_front(key);
    map_[key] = {key * 3, lru_.begin()};
    if (map_.size() > kCacheBound) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    return false;
  }

 private:
  struct Ent {
    std::uint64_t value;
    std::list<std::uint64_t>::iterator pos;
  };
  std::mutex mu_;
  std::map<std::uint64_t, Ent> map_;
  std::list<std::uint64_t> lru_;
};

using WfCache = wf::ClockCache<std::uint64_t, std::uint64_t>;

WfCache::Options wf_cache_options() {
  WfCache::Options o;
  o.max_entries = kCacheBound;
  o.segments = 4;
  return o;
}

template <typename Cache>
void cache_loop(benchmark::State& state, Cache& cache, std::uint64_t keys) {
  // Per-thread stride over the key space; thread_index staggers the
  // starting phase so threads collide on keys, not in lockstep.
  std::uint64_t k = static_cast<std::uint64_t>(state.thread_index()) * 7;
  for (auto _ : state) {
    const std::uint64_t key = k++ % keys;
    if constexpr (std::is_same_v<Cache, MutexLruCache>) {
      benchmark::DoNotOptimize(cache.get_or_insert(key));
    } else {
      typename Cache::Handle h =
          cache.get_or_insert(key, [&] { return key * 3; });
      benchmark::DoNotOptimize(*h);
    }
  }
  state.counters["ops_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_MutexCacheHot(benchmark::State& state) {
  static MutexLruCache cache;
  cache_loop(state, cache, kHotKeys);
}
BENCHMARK(BM_MutexCacheHot)->ThreadRange(1, 64)->UseRealTime();

void BM_WfCacheHot(benchmark::State& state) {
  static WfCache cache(wf_cache_options());
  cache_loop(state, cache, kHotKeys);
}
BENCHMARK(BM_WfCacheHot)->ThreadRange(1, 64)->UseRealTime();

void BM_MutexCacheChurn(benchmark::State& state) {
  static MutexLruCache cache;
  cache_loop(state, cache, kChurnKeys);
}
BENCHMARK(BM_MutexCacheChurn)->ThreadRange(1, 64)->UseRealTime();

void BM_WfCacheChurn(benchmark::State& state) {
  static WfCache cache(wf_cache_options());
  cache_loop(state, cache, kChurnKeys);
}
BENCHMARK(BM_WfCacheChurn)->ThreadRange(1, 64)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
