// E22 -- the wfc::net serving layer quantitatively.  A real epoll server
// on loopback, driven by the load generator at 1/4/16 connections
// (closed loop, memo-warm corpus), reporting wire goodput (qps) and
// latency percentiles per connection count -- CI stores this as
// BENCH_net.json.  The acceptance bar for PR 5 compares the 16-connection
// qps against bench_service's in-process warm-memo row: the TCP layer must
// keep >= 80% of it.  BM_InProcessBaseline reproduces that row here so one
// run carries both numbers.
//
// Every loadgen run asserts exactly-once delivery; a lost or duplicated
// response fails the benchmark run outright.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "service/query_service.hpp"
#include "tasks/canonical.hpp"

namespace {

using namespace wfc;

constexpr int kWorkers = 4;
constexpr int kMaxLevel = 2;

const char* kSolveLine =
    R"({"op":"solve","task":"consensus","procs":2,"values":2,"max_level":2})";

svc::QueryService::Options service_options() {
  svc::QueryService::Options options;
  options.workers = kWorkers;
  options.obs.enabled = true;
  return options;
}

/// The in-process warm-memo reference (bench_service's sweet spot): the
/// same query re-submitted against one service, no wire.
void BM_InProcessBaseline(benchmark::State& state) {
  svc::QueryService service(service_options());
  auto task = std::make_shared<task::ConsensusTask>(2, 2);
  svc::QueryOptions qopts;
  qopts.max_level = kMaxLevel;
  service.submit(svc::Query::solve(task, qopts)).result.get();  // warm

  constexpr int kBatch = 64;
  for (auto _ : state) {
    std::vector<svc::QueryTicket> tickets;
    tickets.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      tickets.push_back(service.submit(svc::Query::solve(task, qopts)));
    }
    for (svc::QueryTicket& ticket : tickets) {
      svc::QueryResult r = ticket.result.get();
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InProcessBaseline)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Closed-loop TCP throughput at state.range(0) connections.
void BM_NetClosedLoop(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  svc::QueryService service(service_options());
  net::ServerConfig config;  // ephemeral loopback port
  config.handler.default_max_level = kMaxLevel;
  net::Server server(service, config);
  server.start();
  const net::Endpoint endpoint{"127.0.0.1", server.port()};
  {
    // Warm the result memo so the sweep measures serving, not solving.
    net::Client warm(net::ClientConfig{endpoint});
    warm.roundtrip(kSolveLine);
  }

  const std::vector<std::string> corpus = {kSolveLine};
  net::LoadgenConfig loadgen;
  loadgen.server = endpoint;
  loadgen.connections = connections;
  loadgen.iterations = 200;
  loadgen.max_inflight = 16;

  std::uint64_t requests = 0;
  net::LoadgenReport last;
  for (auto _ : state) {
    last = net::run_loadgen(corpus, loadgen);
    if (!last.exactly_once()) {
      state.SkipWithError("delivery was not exactly-once");
      break;
    }
    requests += last.received;
  }
  server.stop();

  state.counters["qps"] = benchmark::Counter(static_cast<double>(requests),
                                             benchmark::Counter::kIsRate);
  state.counters["p50_us"] = static_cast<double>(last.p50_us);
  state.counters["p99_us"] = static_cast<double>(last.p99_us);
  state.counters["connections"] = static_cast<double>(connections);
}
BENCHMARK(BM_NetClosedLoop)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
