// E3 -- the Proposition 3.1 decision procedure on the canonical tasks.
//
// Regenerates the solvability table: status (1 = solvable, 0 = unsolvable),
// witness level, and search nodes for consensus, (n+1, k)-set consensus,
// renaming, and simplex agreement, plus how the per-level refutation cost
// of consensus grows with b.
#include <benchmark/benchmark.h>

#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "tasks/two_proc.hpp"
#include "topology/structure.hpp"
#include "topology/subdivision.hpp"

namespace {

using namespace wfc;

void record(benchmark::State& state, const task::SolveResult& r) {
  state.counters["solvable"] =
      r.status == task::Solvability::kSolvable ? 1 : 0;
  state.counters["level"] = r.level;
  state.counters["nodes"] = static_cast<double>(r.nodes_explored);
}

void BM_Consensus(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int max_level = static_cast<int>(state.range(1));
  task::ConsensusTask t(procs, 2);
  task::SolveResult r;
  for (auto _ : state) {
    r = task::solve(t, max_level);
    benchmark::DoNotOptimize(r);
  }
  record(state, r);
}
BENCHMARK(BM_Consensus)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({2, 4})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SetConsensus(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int max_level = static_cast<int>(state.range(2));
  task::KSetConsensusTask t(procs, k);
  task::SolveResult r;
  for (auto _ : state) {
    r = task::solve(t, max_level);
    benchmark::DoNotOptimize(r);
  }
  record(state, r);
}
BENCHMARK(BM_SetConsensus)
    ->Args({2, 1, 3})
    ->Args({2, 2, 1})
    ->Args({3, 2, 1})
    ->Args({3, 3, 1})
    ->Unit(benchmark::kMillisecond);

void BM_Renaming(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int names = static_cast<int>(state.range(1));
  task::RenamingTask t(procs, names);
  task::SolveResult r;
  for (auto _ : state) {
    r = task::solve(t, 1);
    benchmark::DoNotOptimize(r);
  }
  record(state, r);
}
BENCHMARK(BM_Renaming)
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({3, 3})
    ->Args({3, 4})
    ->Unit(benchmark::kMillisecond);

void BM_SimplexAgreement(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  topo::ChromaticComplex target =
      topo::iterated_sds(topo::base_simplex(n_plus_1), depth);
  task::SimplexAgreementTask t(n_plus_1, std::move(target));
  task::SolveResult r;
  for (auto _ : state) {
    r = task::solve(t, depth + 1);
    benchmark::DoNotOptimize(r);
  }
  record(state, r);
}
BENCHMARK(BM_SimplexAgreement)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

// E11: the "level growth" series -- minimal IIS depth for approximate
// agreement as the grid refines.  Expected: b = ceil(log3 m); the measured
// `level` counter reproduces the staircase 1,1,2,2,...,3 and the time
// column shows the cost of deciding each rung.
void BM_ApproxAgreementLevel(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  int expected = 0;
  for (int reach = 1; reach < grid; reach *= 3) ++expected;
  task::ApproxAgreementTask t(2, grid);
  task::SolveResult r;
  for (auto _ : state) {
    r = task::solve(t, expected);
    benchmark::DoNotOptimize(r);
  }
  record(state, r);
  state.counters["grid"] = grid;
  state.counters["expected_level"] = expected;
}
BENCHMARK(BM_ApproxAgreementLevel)
    ->Arg(2)
    ->Arg(3)
    ->Arg(5)
    ->Arg(9)
    ->Arg(14)
    ->Arg(27)
    ->Arg(40)
    ->Arg(81)
    ->Unit(benchmark::kMillisecond);

// E12: the hole makes it unsolvable -- simplex agreement on SDS^2(s^2) vs
// the same target with one interior facet removed.
void BM_HoleAgreement(benchmark::State& state) {
  const bool punctured = state.range(0) != 0;
  topo::ChromaticComplex target =
      topo::iterated_sds(topo::base_simplex(3), 2);
  if (punctured) {
    for (std::size_t fi = 0; fi < target.num_facets(); ++fi) {
      bool interior = true;
      for (topo::VertexId v : target.facets()[fi]) {
        if (target.vertex(v).carrier != ColorSet::full(3)) interior = false;
      }
      if (interior) {
        target = topo::drop_facet(target, fi);
        break;
      }
    }
  }
  task::SimplexAgreementTask t(3, std::move(target));
  task::SolveResult r;
  for (auto _ : state) {
    r = task::solve(t, 2);
    benchmark::DoNotOptimize(r);
  }
  record(state, r);
  state.counters["punctured"] = punctured ? 1 : 0;
}
BENCHMARK(BM_HoleAgreement)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The 2-processor connectivity criterion vs the general subdivision search
// on the same instances: the special case wins by orders of magnitude while
// returning the identical minimal level (cross-checked in tests).
void BM_TwoProcCriterion(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  task::ApproxAgreementTask t(2, grid);
  task::TwoProcVerdict v;
  for (auto _ : state) {
    v = task::decide_two_processors(t);
    benchmark::DoNotOptimize(v);
  }
  state.counters["solvable"] = v.solvable ? 1 : 0;
  state.counters["level"] = v.level_lower_bound;
}
BENCHMARK(BM_TwoProcCriterion)
    ->Arg(3)
    ->Arg(9)
    ->Arg(27)
    ->Arg(81)
    ->Arg(243)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
