// E25 -- availability under a single-shard blackhole, with and without the
// robustness machinery this tier grew: active health probing and retry
// budgets.  Real epoll servers on loopback: three backend shards, each
// behind its own wfc::net::ChaosProxy link, behind a wfc::cluster::Router
// behind a front Server, driven by the load generator for a fixed wall
// duration while shard s1's link is blackholed the whole time.
//
//   * BM_BlackholeAvailability/probes:P/budget:B -- the 2x2 arm matrix.
//     P=1 turns on active probing (50 ms interval, 120 ms probe timeout,
//     down after 3 misses); P=0 leaves detection to per-request pending
//     timeouts.  B=1 caps re-dispatch amplification with token buckets;
//     B=0 lets every orphan re-dispatch.
//
// The headline counters:
//   availability      ok responses / sent (the experiment's y-axis)
//   time_to_evict_ms  fault start -> shard_health(s1) == Down (0 = never);
//                     with probes on this lands near 3 probe intervals,
//                     without them the shard is never marked Down at all
//   p99_us / p999_us  tail latency as seen by the closed-loop clients
//
// Every arm asserts exactly-once delivery (lost / duplicates == 0): a
// blackhole may cost availability, never correctness.  CI stores all rows
// as BENCH_chaosnet.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "net/chaosproxy.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "service/query_service.hpp"

namespace {

using namespace wfc;
using Clock = std::chrono::steady_clock;

constexpr int kShards = 3;
constexpr auto kRunFor = std::chrono::milliseconds(3'000);

svc::QueryService::Options service_options() {
  svc::QueryService::Options options;
  options.workers = 4;
  return options;
}

/// Mixed fingerprints, each carrying a client deadline so blackholed
/// requests resolve (deadline_exceeded) instead of parking forever.
std::vector<std::string> deadline_corpus() {
  std::vector<std::string> corpus;
  for (int values = 2; values <= 9; ++values) {
    corpus.push_back(
        R"({"op":"solve","task":"consensus","procs":2,"values":)" +
        std::to_string(values) + R"(,"max_level":2,"timeout_ms":300})");
  }
  for (int names = 3; names <= 6; ++names) {
    corpus.push_back(
        R"({"op":"solve","task":"renaming","procs":2,"names":)" +
        std::to_string(names) + R"(,"max_level":2,"timeout_ms":300})");
  }
  return corpus;
}

/// One backend shard: a QueryService plus a started Server on an
/// ephemeral loopback port.
struct Backend {
  Backend() : service(service_options()) {
    net::ServerConfig config;
    config.handler.default_max_level = 2;
    server = std::make_unique<net::Server>(service, std::move(config));
    server->start();
  }
  svc::QueryService service;
  std::unique_ptr<net::Server> server;
};

/// kShards backends, each behind its own chaos link, behind a router
/// behind a front server.
struct ChaosCluster {
  ChaosCluster(bool probes, bool budget) {
    net::ChaosProxyConfig proxy_config;
    proxy_config.seed = 25;  // E25
    for (int i = 0; i < kShards; ++i) {
      backends.push_back(std::make_unique<Backend>());
      proxy_config.links.push_back(net::ChaosLinkSpec{
          "s" + std::to_string(i + 1), net::Endpoint{"127.0.0.1", 0},
          net::Endpoint{"127.0.0.1", backends.back()->server->port()}});
    }
    proxy = std::make_unique<net::ChaosProxy>(std::move(proxy_config));
    proxy->start();

    cluster::RouterConfig config;
    for (int i = 0; i < kShards; ++i) {
      const std::string id = "s" + std::to_string(i + 1);
      config.shards.push_back(
          cluster::ShardSpec{id, net::Endpoint{"127.0.0.1", proxy->port(id)}});
    }
    config.pending_grace = std::chrono::milliseconds(500);
    config.tick = std::chrono::milliseconds(5);
    if (probes) {
      config.probe_interval = std::chrono::milliseconds(50);
      config.probe_timeout = std::chrono::milliseconds(120);
      config.probe_down_after = 3;
    }
    if (!budget) {
      config.retry_budget_burst = 0;  // burst <= 0 always grants
      config.shard_retry_budget_burst = 0;
    }
    router = std::make_unique<cluster::Router>(std::move(config));
    router->start();
    net::ServerConfig front_config;
    front = std::make_unique<net::Server>(*router, front_config);
    front->start();
  }

  ~ChaosCluster() {
    front->stop();
    router->stop();
    proxy->stop();
  }

  std::vector<std::unique_ptr<Backend>> backends;
  std::unique_ptr<net::ChaosProxy> proxy;
  std::unique_ptr<cluster::Router> router;
  std::unique_ptr<net::Server> front;
};

/// Blackhole s1 for the whole run; measure availability, tail latency, and
/// how long the router takes to mark the shard Down.
void BM_BlackholeAvailability(benchmark::State& state) {
  const bool probes = state.range(0) != 0;
  const bool budget = state.range(1) != 0;
  const std::vector<std::string> corpus = deadline_corpus();

  net::LoadgenReport last;
  double time_to_evict_ms = 0.0;
  cluster::Router::Stats rs;
  for (auto _ : state) {
    ChaosCluster cluster(probes, budget);

    net::FaultSpec hole;
    hole.mode = net::FaultMode::kBlackhole;
    cluster.proxy->set_fault("s1", hole);
    const Clock::time_point fault_at = Clock::now();

    // Sample shard_health until Down (or the run ends): the eviction
    // latency the probes buy.
    std::atomic<bool> sampling{true};
    std::atomic<long> evict_ms{0};
    std::thread sampler([&] {
      while (sampling.load(std::memory_order_relaxed)) {
        if (cluster.router->shard_health("s1") ==
            cluster::Router::ShardHealth::kDown) {
          evict_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                             Clock::now() - fault_at)
                             .count(),
                         std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });

    net::LoadgenConfig config;
    config.server = net::Endpoint{"127.0.0.1", cluster.front->port()};
    config.connections = 4;
    config.duration = kRunFor;
    config.max_inflight = 8;
    last = net::run_loadgen(corpus, config);

    sampling.store(false, std::memory_order_relaxed);
    sampler.join();
    time_to_evict_ms = static_cast<double>(evict_ms.load());
    rs = cluster.router->stats();

    if (last.lost != 0 || last.duplicates != 0) {
      state.SkipWithError("blackhole broke exactly-once delivery");
      break;
    }
  }

  const auto status_count = [&](const char* token) {
    const auto it = last.by_status.find(token);
    return it == last.by_status.end() ? 0.0 : static_cast<double>(it->second);
  };
  const double ok = status_count("ok");
  state.counters["probes"] = probes ? 1.0 : 0.0;
  state.counters["budget"] = budget ? 1.0 : 0.0;
  state.counters["availability"] =
      last.sent == 0 ? 0.0 : ok / static_cast<double>(last.sent);
  state.counters["time_to_evict_ms"] = time_to_evict_ms;
  state.counters["p99_us"] = static_cast<double>(last.p99_us);
  state.counters["p999_us"] = static_cast<double>(last.p999_us);
  state.counters["ok"] = ok;
  state.counters["deadline_exceeded"] = status_count("deadline_exceeded");
  state.counters["overloaded"] = status_count("overloaded");
  state.counters["redispatches"] = static_cast<double>(rs.redispatches);
  state.counters["probe_failures"] = static_cast<double>(rs.probe_failures);
  state.counters["budget_exhausted"] =
      static_cast<double>(rs.budget_exhausted);
  state.counters["hop_deadline_expired"] =
      static_cast<double>(rs.hop_deadline_expired);
}
BENCHMARK(BM_BlackholeAvailability)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->ArgNames({"probes", "budget"})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
