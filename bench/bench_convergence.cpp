// E6 / E7 -- Theorem 5.1 and Lemma 2.1 quantitatively: the minimal level k
// admitting a (color-and-)carrier-preserving simplicial map onto a target
// subdivision, and the cost of finding it, as the target gets finer.
#include <benchmark/benchmark.h>

#include "convergence/approximation.hpp"
#include "convergence/convergence.hpp"
#include "tasks/decision_protocol.hpp"
#include "topology/geometry.hpp"
#include "topology/subdivision.hpp"

namespace {

using namespace wfc;

void BM_ChromaticApproximation(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int target_depth = static_cast<int>(state.range(1));
  topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
  topo::ChromaticComplex target = topo::iterated_sds(base, target_depth);
  conv::ApproximationOptions opts;
  opts.max_level = target_depth + 2;
  int level = -1;
  double checks = 0;
  for (auto _ : state) {
    conv::ApproximationResult r =
        conv::chromatic_approximation(target, base, opts);
    level = r.level;
    checks = static_cast<double>(r.star_checks);
    benchmark::DoNotOptimize(r);
  }
  state.counters["min_level"] = level;
  state.counters["star_checks"] = checks;
  state.counters["target_facets"] = static_cast<double>(target.num_facets());
}
BENCHMARK(BM_ChromaticApproximation)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

void BM_BarycentricApproximation(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
  topo::ChromaticComplex target = topo::standard_chromatic_subdivision(base);
  conv::ApproximationOptions opts;
  opts.max_level = 6;
  int level = -1;
  for (auto _ : state) {
    conv::ApproximationResult r =
        conv::barycentric_approximation(target, base, opts);
    level = r.level;
    benchmark::DoNotOptimize(r);
  }
  state.counters["min_level"] = level;
}
BENCHMARK(BM_BarycentricApproximation)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

// Convergence-compiled simplex agreement vs search-based solving: the two
// routes to the same protocol (Cor 5.2 vs Prop 3.1 search).
void BM_SimplexAgreementViaConvergence(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  topo::ChromaticComplex target =
      topo::iterated_sds(topo::base_simplex(n_plus_1), depth);
  int level = -1;
  for (auto _ : state) {
    task::SimplexAgreementTask t(n_plus_1, target);
    conv::ApproximationOptions opts;
    opts.max_level = depth + 2;
    task::SolveResult r = conv::solve_simplex_agreement_by_convergence(t, opts);
    level = r.level;
    benchmark::DoNotOptimize(r);
  }
  state.counters["level"] = level;
}
BENCHMARK(BM_SimplexAgreementViaConvergence)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SimplexAgreementViaSearch(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  topo::ChromaticComplex target =
      topo::iterated_sds(topo::base_simplex(n_plus_1), depth);
  int level = -1;
  for (auto _ : state) {
    task::SimplexAgreementTask t(n_plus_1, target);
    task::SolveResult r = task::solve(t, depth + 1);
    level = r.level;
    benchmark::DoNotOptimize(r);
  }
  state.counters["level"] = level;
}
BENCHMARK(BM_SimplexAgreementViaSearch)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

// Mesh shrinkage: why chromatic approximation reaches targets in
// depth-many levels while barycentric needs more.  The counter reports
// mesh(level)/mesh(level-1): SDS contracts faster than Bsd's n/(n+1).
void BM_MeshShrinkage(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const bool chromatic = state.range(1) != 0;
  const int level = static_cast<int>(state.range(2));
  topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
  double ratio = 0, mesh = 0;
  for (auto _ : state) {
    topo::ChromaticComplex prev = chromatic
                                      ? topo::iterated_sds(base, level - 1)
                                      : topo::iterated_bsd(base, level - 1);
    topo::ChromaticComplex cur = chromatic ? topo::iterated_sds(base, level)
                                           : topo::iterated_bsd(base, level);
    mesh = topo::mesh_diameter(cur);
    ratio = mesh / topo::mesh_diameter(prev);
    benchmark::DoNotOptimize(cur);
  }
  state.counters["mesh"] = mesh;
  state.counters["shrink_ratio"] = ratio;
}
BENCHMARK(BM_MeshShrinkage)
    ->Args({2, 1, 2})
    ->Args({2, 0, 2})
    ->Args({3, 1, 2})
    ->Args({3, 0, 2})
    ->Args({3, 1, 3})
    ->Args({3, 0, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
