// E5 -- the cost structure of the §4 / Figure 2 emulation.
//
// Regenerates the "memories consumed" series: IIS memories used to emulate
// a k-shot atomic-snapshot protocol, as a function of processor count,
// shots, and adversary.  Counters report total rounds, rounds per emulated
// operation, and the spread between the fastest and slowest emulator --
// the nonblocking (not wait-free) signature the paper points out.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "emulation/emulator.hpp"
#include "emulation/history.hpp"
#include "emulation/iis_in_snapshot.hpp"

namespace {

using namespace wfc;

enum AdversaryKind { kSync = 0, kSeq = 1, kRot = 2, kRand = 3 };

std::unique_ptr<rt::Adversary> make_adversary(int kind, std::uint64_t seed) {
  switch (kind) {
    case kSync:
      return std::make_unique<rt::SynchronousAdversary>();
    case kSeq:
      return std::make_unique<rt::SequentialAdversary>();
    case kRot:
      return std::make_unique<rt::RotatingAdversary>();
    default:
      return std::make_unique<rt::RandomAdversary>(seed);
  }
}

void BM_EmulationSimulated(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int shots = static_cast<int>(state.range(1));
  const int kind = static_cast<int>(state.range(2));
  const int max_rounds = 128 + 32 * procs * shots;

  double rounds = 0, min_steps = 0, max_steps = 0;
  bool valid = true;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    emu::FullInfoClient client(shots);
    auto adv = make_adversary(kind, seed++);
    emu::EmulationResult res = emu::run_emulation_simulated(
        procs, *adv, max_rounds, client.init(), client.on_scan());
    valid = valid && emu::check_history(res).ok();
    rounds = res.rounds_used;
    min_steps = *std::min_element(res.iis_steps.begin(), res.iis_steps.end());
    max_steps = *std::max_element(res.iis_steps.begin(), res.iis_steps.end());
    benchmark::DoNotOptimize(res);
  }
  state.counters["rounds"] = rounds;
  state.counters["rounds_per_op"] = rounds / (2.0 * shots);
  state.counters["steps_min"] = min_steps;
  state.counters["steps_max"] = max_steps;
  state.counters["history_valid"] = valid ? 1 : 0;
}
BENCHMARK(BM_EmulationSimulated)
    ->ArgsProduct({{2, 3, 4, 6}, {1, 2, 4}, {kSync, kSeq, kRot, kRand}})
    ->Unit(benchmark::kMicrosecond);

void BM_EmulationThreads(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int shots = static_cast<int>(state.range(1));
  const int max_rounds = 256 + 64 * procs * shots;
  double rounds = 0;
  bool valid = true;
  for (auto _ : state) {
    emu::FullInfoClient client(shots);
    emu::EmulationResult res = emu::run_emulation_threads(
        procs, max_rounds, client.init(), client.on_scan());
    valid = valid && emu::check_history(res).ok();
    rounds = res.rounds_used;
    benchmark::DoNotOptimize(res);
  }
  state.counters["rounds"] = rounds;
  state.counters["history_valid"] = valid ? 1 : 0;
}
BENCHMARK(BM_EmulationThreads)
    ->ArgsProduct({{2, 3, 4}, {1, 2}})
    ->Unit(benchmark::kMillisecond);

// Direct simulated atomic-snapshot model as the baseline the emulation is
// measured against: operations consumed by the same client protocol.
void BM_DirectSnapshotModel(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int shots = static_cast<int>(state.range(1));
  for (auto _ : state) {
    std::function<int(int)> init = [](int p) { return p; };
    std::function<rt::Step<int>(int, int, const rt::MemoryView<int>&)>
        on_scan = [&](int, int k, const rt::MemoryView<int>&) {
          if (k >= shots) return rt::Step<int>::halt();
          return rt::Step<int>::cont(0);
        };
    rt::SnapshotRunStats stats = rt::run_snapshot_model<int>(
        procs, rt::fair_schedule(procs, 2 * shots), init, on_scan);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["ops_per_proc"] = 2.0 * shots;
}
BENCHMARK(BM_DirectSnapshotModel)
    ->ArgsProduct({{2, 3, 4, 6}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

// E16: the reverse emulation -- IIS protocols inside the snapshot model.
// Counter `ops_per_round` = snapshot-model appearances per IIS round per
// processor (theoretical cap: 2(n+1)).
void BM_ReverseEmulation(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  std::function<int(int)> init = [](int p) { return p; };
  std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)> on_view =
      [&](int, int round, const rt::IisSnapshot<int>&) {
        return round + 1 < rounds ? rt::Step<int>::cont(0)
                                  : rt::Step<int>::halt();
      };
  double worst_ops = 0;
  for (auto _ : state) {
    emu::ReverseEmulationStats stats = emu::run_iis_in_snapshot_model<int>(
        procs, emu::reverse_emulation_schedule(procs, rounds), init, on_view);
    for (int ops : stats.ops_taken) {
      worst_ops = std::max(worst_ops, static_cast<double>(ops));
    }
    benchmark::DoNotOptimize(stats);
  }
  state.counters["ops_per_round"] = worst_ops / rounds;
  state.counters["cap_per_round"] = 2.0 * (procs + 1);
}
BENCHMARK(BM_ReverseEmulation)
    ->ArgsProduct({{2, 3, 4, 6}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
