// E26 -- the arena core and the persistent chain store.
//
// Two questions, two benchmark families:
//
//   1. Engine throughput: search nodes per second, arena vs legacy, on the
//      hardest canonical instances of bench_solvability (deep consensus
//      refutations and 3-process renaming).  Both engines explore the
//      identical tree (arena_test pins the node counts), so nodes/sec is a
//      pure memory-layout comparison -- the acceptance bar is arena >= 2x.
//   2. Cold vs warm start: time-to-first-answer of a fresh SdsCache with
//      an empty store (builds the tower, publishes) against one whose
//      store already holds the chain (mmap, zero builds).  The bar is
//      warm >= 10x faster.
//
// Counters: nodes_per_s for family 1, chain_builds for family 2 (warm runs
// must report 0).  CI captures the JSON as BENCH_store.json via
// --benchmark_out (store-smoke job).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "service/sds_cache.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "topology/complex.hpp"

namespace {

using namespace wfc;

// ---------------------------------------------------------------------------
// Family 1: arena vs legacy nodes/sec.

/// One shared chain across iterations so the subdivision cost (identical
/// for both engines) stays out of the measurement: this times the SEARCH.
std::shared_ptr<const proto::SdsChain> shared_chain(const task::Task& t,
                                                    int depth) {
  static std::map<std::string, std::shared_ptr<const proto::SdsChain>> cache;
  const std::string key = t.name() + "@" + std::to_string(depth);
  auto& slot = cache[key];
  if (!slot) {
    slot = std::make_shared<proto::SdsChain>(t.input(), depth);
  }
  return slot;
}

void run_engine(benchmark::State& state, task::Task& t, int level,
                task::SolveEngine engine) {
  task::SolveOptions options;
  options.engine = engine;
  const auto chain = shared_chain(t, level);
  options.chain_provider = [&chain](const topo::ChromaticComplex&,
                                    int) { return chain; };
  std::uint64_t nodes = 0;
  task::SolveResult r;
  for (auto _ : state) {
    r = task::solve_at_level(t, level, options);
    benchmark::DoNotOptimize(r);
    nodes += r.nodes_explored;
  }
  state.counters["nodes"] = static_cast<double>(r.nodes_explored);
  state.counters["nodes_per_s"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.counters["solvable"] =
      r.status == task::Solvability::kSolvable ? 1 : 0;
}

/// The hardest bench_solvability instances: consensus refutation at depth 3
/// (the biggest exhaustive search in the suite) and 3-process renaming.
void BM_ConsensusRefute_Arena(benchmark::State& state) {
  task::ConsensusTask t(2, 2);
  run_engine(state, t, static_cast<int>(state.range(0)),
             task::SolveEngine::kArena);
}
BENCHMARK(BM_ConsensusRefute_Arena)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_ConsensusRefute_Legacy(benchmark::State& state) {
  task::ConsensusTask t(2, 2);
  run_engine(state, t, static_cast<int>(state.range(0)),
             task::SolveEngine::kLegacy);
}
BENCHMARK(BM_ConsensusRefute_Legacy)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Renaming3_Arena(benchmark::State& state) {
  task::RenamingTask t(3, static_cast<int>(state.range(0)));
  run_engine(state, t, 1, task::SolveEngine::kArena);
}
BENCHMARK(BM_Renaming3_Arena)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Renaming3_Legacy(benchmark::State& state) {
  task::RenamingTask t(3, static_cast<int>(state.range(0)));
  run_engine(state, t, 1, task::SolveEngine::kLegacy);
}
BENCHMARK(BM_Renaming3_Legacy)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SetConsensus33_Arena(benchmark::State& state) {
  task::KSetConsensusTask t(3, 2);
  run_engine(state, t, 1, task::SolveEngine::kArena);
}
BENCHMARK(BM_SetConsensus33_Arena)->Unit(benchmark::kMillisecond);

void BM_SetConsensus33_Legacy(benchmark::State& state) {
  task::KSetConsensusTask t(3, 2);
  run_engine(state, t, 1, task::SolveEngine::kLegacy);
}
BENCHMARK(BM_SetConsensus33_Legacy)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Family 2: cold vs warm time-to-first-answer.

struct BenchDir {
  BenchDir() {
    char tmpl[] = "/tmp/wfc_bench_store_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path = tmpl;
  }
  ~BenchDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
  std::string path;
};

/// Cold: every iteration starts a fresh cache over an EMPTY store and asks
/// for the depth-`range(0)` tower of the 2-process input -- the restart
/// worst case (full subdivision + first publish).
void BM_ColdStartTTFA(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const topo::ChromaticComplex input = topo::base_simplex(2);
  std::uint64_t builds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchDir dir;  // empty store each iteration
    svc::SdsCache::Options options;
    options.store.dir = dir.path;
    svc::SdsCache cache(options);
    state.ResumeTiming();
    bool built = false;
    auto chain = cache.chain_for(input, depth, &built);
    benchmark::DoNotOptimize(chain);
    state.PauseTiming();
    builds += cache.stats().chain_builds();
    state.ResumeTiming();
  }
  state.counters["chain_builds"] =
      static_cast<double>(builds) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ColdStartTTFA)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

/// Warm: the store is populated ONCE; every iteration is a fresh cache
/// (a restarted process) whose first answer mmaps the stored tower.
void BM_WarmStartTTFA(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const topo::ChromaticComplex input = topo::base_simplex(2);
  static BenchDir dir;
  {
    svc::SdsCache::Options options;
    options.store.dir = dir.path;
    svc::SdsCache seeder(options);
    seeder.chain_for(input, depth);
  }
  std::uint64_t builds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    svc::SdsCache::Options options;
    options.store.dir = dir.path;
    options.store.readonly = true;
    svc::SdsCache cache(options);
    state.ResumeTiming();
    bool built = false;
    auto chain = cache.chain_for(input, depth, &built);
    benchmark::DoNotOptimize(chain);
    state.PauseTiming();
    builds += cache.stats().chain_builds();
    state.ResumeTiming();
  }
  state.counters["chain_builds"] =
      static_cast<double>(builds) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_WarmStartTTFA)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
