// E27 -- model-parameterized solvability (wfc::model).
//
// Three questions, three benchmark families:
//
//   1. Restriction overhead: solve_in_model under wait_free must cost what
//      task::solve costs (the restrictor seam is a null function), and a
//      real model's per-level pruning must stay a small multiple of the
//      unrestricted solve on the canonical instances -- the admissible
//      subcomplex is SMALLER, so the search itself often wins back the
//      prune cost (counter nodes shows it).
//   2. Derived-tower amortization: the service keys restricted towers in
//      SdsCache by mixed fingerprint, so only the FIRST query of a
//      (task, model) pair prunes; repeats are pure hits.  Cold builds vs
//      warm hits per second (counter derived_builds must be 0 when warm).
//   3. Run-filter cost in the checker: explore_iis with a model run_filter
//      against the unfiltered sweep -- executions/sec plus how many runs
//      the model rejected (counter filtered).
//
// CI captures the JSON as BENCH_model.json via --benchmark_out
// (model-conformance job).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "check/explorer.hpp"
#include "model/model.hpp"
#include "model/oracle.hpp"
#include "model/restrict.hpp"
#include "model/solve.hpp"
#include "service/sds_cache.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "topology/complex.hpp"
#include "topology/hash.hpp"

namespace {

using namespace wfc;

// ---------------------------------------------------------------------------
// Family 1: restricted solve vs the unrestricted baseline.

void run_solve(benchmark::State& state, task::Task& t, int max_level,
               std::shared_ptr<const model::Model> m) {
  std::uint64_t nodes = 0;
  task::SolveResult r;
  for (auto _ : state) {
    r = model::solve_in_model(t, max_level, m);
    benchmark::DoNotOptimize(r);
    nodes += r.nodes_explored;
  }
  state.counters["nodes"] = static_cast<double>(r.nodes_explored);
  state.counters["nodes_per_s"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.counters["solvable"] =
      r.status == task::Solvability::kSolvable ? 1 : 0;
}

void BM_Consensus22_WaitFree(benchmark::State& state) {
  task::ConsensusTask t(2, 2);
  run_solve(state, t, static_cast<int>(state.range(0)),
            model::Model::parse("wait_free"));
}
BENCHMARK(BM_Consensus22_WaitFree)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

void BM_Consensus22_Synchronous(benchmark::State& state) {
  task::ConsensusTask t(2, 2);
  run_solve(state, t, static_cast<int>(state.range(0)),
            model::Model::parse("t_resilient(0)"));
}
BENCHMARK(BM_Consensus22_Synchronous)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

void BM_SetConsensus32_WaitFree(benchmark::State& state) {
  task::KSetConsensusTask t(3, 2);
  run_solve(state, t, 1, model::Model::parse("wait_free"));
}
BENCHMARK(BM_SetConsensus32_WaitFree)->Unit(benchmark::kMillisecond);

void BM_SetConsensus32_1Resilient(benchmark::State& state) {
  task::KSetConsensusTask t(3, 2);
  run_solve(state, t, 1, model::Model::parse("t_resilient(1)"));
}
BENCHMARK(BM_SetConsensus32_1Resilient)->Unit(benchmark::kMillisecond);

void BM_SetConsensus32_2ObstructionFree(benchmark::State& state) {
  task::KSetConsensusTask t(3, 2);
  run_solve(state, t, 1, model::Model::parse("k_obstruction_free(2)"));
}
BENCHMARK(BM_SetConsensus32_2ObstructionFree)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Family 2: derived-tower build vs cache hit.

struct BenchDir {
  BenchDir() {
    char tmpl[] = "/tmp/wfc_bench_model_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path = tmpl;
  }
  ~BenchDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
  std::string path;
};

/// Cold: each iteration prunes the depth-`range(0)` restricted tower from
/// scratch through a fresh cache (first query of a (task, model) pair).
void BM_DerivedTowerCold(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const topo::ChromaticComplex input = topo::base_simplex(3);
  const auto m = model::Model::parse("t_resilient(1)");
  const std::uint64_t key = model::mix_fingerprint(
      topo::complex_fingerprint(input), m->tag());
  std::uint64_t builds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    svc::SdsCache cache;
    const auto full = cache.chain_for(input, depth);
    state.ResumeTiming();
    bool built = false;
    auto derived = cache.derived_chain_for(
        key, m->tag(), depth,
        [&](std::shared_ptr<const proto::SdsChain> prior, int d) {
          return model::restricted_tower(*full, d, *m, prior);
        },
        &built);
    benchmark::DoNotOptimize(derived);
    if (built) ++builds;
  }
  state.counters["derived_builds"] =
      static_cast<double>(builds) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_DerivedTowerCold)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

/// Warm: one cache, tower pruned once before timing; iterations are the
/// steady-state hit path every repeat (task, model) query takes.
void BM_DerivedTowerWarm(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const topo::ChromaticComplex input = topo::base_simplex(3);
  const auto m = model::Model::parse("t_resilient(1)");
  const std::uint64_t key = model::mix_fingerprint(
      topo::complex_fingerprint(input), m->tag());
  svc::SdsCache cache;
  const auto full = cache.chain_for(input, depth);
  const auto builder = [&](std::shared_ptr<const proto::SdsChain> prior,
                           int d) {
    return model::restricted_tower(*full, d, *m, prior);
  };
  bool built = false;
  cache.derived_chain_for(key, m->tag(), depth, builder, &built);
  std::uint64_t builds = 0;
  for (auto _ : state) {
    bool hit_built = false;
    auto derived =
        cache.derived_chain_for(key, m->tag(), depth, builder, &hit_built);
    benchmark::DoNotOptimize(derived);
    if (hit_built) ++builds;
  }
  state.counters["derived_builds"] =
      static_cast<double>(builds) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_DerivedTowerWarm)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Family 3: model run_filter in the checker sweep.

void run_explore(benchmark::State& state, int n, int rounds,
                 std::shared_ptr<const model::Model> m) {
  chk::ExploreOptions opt;
  opt.n_procs = n;
  opt.rounds = rounds;
  if (m != nullptr) opt.run_filter = model::run_filter(m, n);
  std::uint64_t executions = 0;
  chk::ExploreStats stats;
  for (auto _ : state) {
    stats = chk::explore_iis<int>(
        opt, [](int p) { return p; },
        [](int, int, const rt::IisSnapshot<int>& snap) {
          return rt::Step<int>::cont(static_cast<int>(snap.size()));
        },
        [](const chk::Execution<int>&) {});
    benchmark::DoNotOptimize(stats);
    executions += stats.executions;
  }
  state.counters["executions"] = static_cast<double>(stats.executions);
  state.counters["filtered"] = static_cast<double>(stats.filtered);
  state.counters["executions_per_s"] = benchmark::Counter(
      static_cast<double>(executions), benchmark::Counter::kIsRate);
}

void BM_Explore32_Unfiltered(benchmark::State& state) {
  run_explore(state, 3, 2, nullptr);
}
BENCHMARK(BM_Explore32_Unfiltered)->Unit(benchmark::kMillisecond);

void BM_Explore32_1Resilient(benchmark::State& state) {
  run_explore(state, 3, 2, model::Model::parse("t_resilient(1)"));
}
BENCHMARK(BM_Explore32_1Resilient)->Unit(benchmark::kMillisecond);

void BM_Explore32_Synchronous(benchmark::State& state) {
  run_explore(state, 3, 2, model::Model::parse("t_resilient(0)"));
}
BENCHMARK(BM_Explore32_Synchronous)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
