// E23 -- the wfc::cluster routing tier quantitatively.  Real epoll servers
// on loopback: N backend shards behind a wfc::cluster::Router behind a
// front Server, driven end-to-end by the load generator (closed loop,
// mixed-fingerprint corpus).  Three questions, one binary:
//
//   * BM_SingleFatServer: the comparator -- the same corpus against one
//     server with no routing tier (the router's proxy overhead baseline).
//   * BM_ClusterClosedLoop/1|2|4: goodput and tail latency through the
//     router as the ring grows; every run asserts exactly-once delivery
//     THROUGH the proxy (lost / duplicated / unmatched all zero).
//   * BM_RoutingLocality/0|1: the reason the tier exists -- fingerprint
//     routing (arg 0) concentrates each task's repeats on one shard, so
//     the result-memo hit rate stays near the single-server figure, while
//     random routing (arg 1) spreads them over every shard and pays one
//     cold solve per shard per task.  The memo_hit_rate counter is the
//     cache-locality win; CI stores all rows as BENCH_cluster.json.
//
// Shard counts stay modest (<= 4) because everything shares one machine:
// the point is routing behavior, not loopback saturation.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "service/query_service.hpp"

namespace {

using namespace wfc;

constexpr int kWorkers = 4;
constexpr int kMaxLevel = 2;

svc::QueryService::Options service_options() {
  svc::QueryService::Options options;
  options.workers = kWorkers;
  options.obs.enabled = true;
  return options;
}

/// A corpus of distinct task fingerprints, each cheap at max_level 2 and
/// memoizable: repeats of one line are memo hits on whichever shard owns
/// its fingerprint.
std::vector<std::string> mixed_corpus() {
  std::vector<std::string> corpus;
  for (int values = 2; values <= 9; ++values) {
    corpus.push_back(
        R"({"op":"solve","task":"consensus","procs":2,"values":)" +
        std::to_string(values) + R"(,"max_level":2})");
  }
  for (int names = 3; names <= 6; ++names) {
    corpus.push_back(
        R"({"op":"solve","task":"renaming","procs":2,"names":)" +
        std::to_string(names) + R"(,"max_level":2})");
  }
  return corpus;
}

/// One backend shard: a QueryService plus a started Server on an
/// ephemeral loopback port.
struct Backend {
  Backend() : service(service_options()) {
    net::ServerConfig config;
    config.handler.default_max_level = kMaxLevel;
    server = std::make_unique<net::Server>(service, std::move(config));
    server->start();
  }
  svc::QueryService service;
  std::unique_ptr<net::Server> server;
};

/// N shards behind a router behind a front server, ready for loadgen.
struct Cluster {
  explicit Cluster(int n, bool random_routing = false) {
    cluster::RouterConfig config;
    for (int i = 0; i < n; ++i) {
      backends.push_back(std::make_unique<Backend>());
      config.shards.push_back(cluster::ShardSpec{
          "s" + std::to_string(i + 1),
          net::Endpoint{"127.0.0.1", backends.back()->server->port()}});
    }
    config.random_routing = random_routing;
    router = std::make_unique<cluster::Router>(std::move(config));
    router->start();
    net::ServerConfig front_config;
    front = std::make_unique<net::Server>(*router, front_config);
    front->start();
  }

  [[nodiscard]] net::Endpoint endpoint() const {
    return net::Endpoint{"127.0.0.1", front->port()};
  }

  /// Result-memo hit rate across every shard, 0..1.
  [[nodiscard]] double memo_hit_rate() const {
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;
    for (const auto& backend : backends) {
      const svc::ServiceStats stats = backend->service.stats();
      queries += stats.queries;
      hits += stats.result_hits;
    }
    return queries == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(queries);
  }

  std::vector<std::unique_ptr<Backend>> backends;
  std::unique_ptr<cluster::Router> router;
  std::unique_ptr<net::Server> front;
};

net::LoadgenConfig loadgen_config(const net::Endpoint& endpoint) {
  net::LoadgenConfig config;
  config.server = endpoint;
  config.connections = 4;
  config.iterations = 50;
  config.max_inflight = 16;
  return config;
}

/// The no-router comparator: one fat server takes the whole corpus.
void BM_SingleFatServer(benchmark::State& state) {
  Backend backend;
  const std::vector<std::string> corpus = mixed_corpus();
  const net::Endpoint endpoint{"127.0.0.1", backend.server->port()};
  net::LoadgenConfig config = loadgen_config(endpoint);

  std::uint64_t requests = 0;
  net::LoadgenReport last;
  for (auto _ : state) {
    last = net::run_loadgen(corpus, config);
    if (!last.exactly_once()) {
      state.SkipWithError("delivery was not exactly-once");
      break;
    }
    requests += last.received;
  }
  state.counters["qps"] = benchmark::Counter(static_cast<double>(requests),
                                             benchmark::Counter::kIsRate);
  state.counters["p50_us"] = static_cast<double>(last.p50_us);
  state.counters["p99_us"] = static_cast<double>(last.p99_us);
  state.counters["shards"] = 0.0;  // no routing tier at all
}
BENCHMARK(BM_SingleFatServer)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Goodput through the router at state.range(0) shards, exactly-once
/// asserted end to end (the id splice under pipelining).
void BM_ClusterClosedLoop(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  Cluster cluster(shards);
  const std::vector<std::string> corpus = mixed_corpus();
  net::LoadgenConfig config = loadgen_config(cluster.endpoint());

  std::uint64_t requests = 0;
  net::LoadgenReport last;
  for (auto _ : state) {
    last = net::run_loadgen(corpus, config);
    if (!last.exactly_once()) {
      state.SkipWithError("delivery was not exactly-once through the router");
      break;
    }
    requests += last.received;
  }
  const cluster::Router::Stats rs = cluster.router->stats();
  if (rs.late_drops != 0) {
    state.SkipWithError("router delivered a late duplicate upstream line");
  }
  state.counters["qps"] = benchmark::Counter(static_cast<double>(requests),
                                             benchmark::Counter::kIsRate);
  state.counters["p50_us"] = static_cast<double>(last.p50_us);
  state.counters["p99_us"] = static_cast<double>(last.p99_us);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["memo_hit_rate"] = cluster.memo_hit_rate();
}
BENCHMARK(BM_ClusterClosedLoop)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The cache-locality experiment: identical cold 4-shard clusters,
/// fingerprint routing (arg 0) vs random routing (arg 1), and only 8
/// repeats of each of 30 fingerprints (4 connections x 2 corpus passes).
/// Fingerprint routing pays ONE cold solve per task; random routing pays
/// one per shard the task happens to land on (~3.6 of 4 at 8 repeats), so
/// the memo_hit_rate spread is the win consistent hashing buys.  A fresh
/// cluster per iteration keeps the memo genuinely cold.
void BM_RoutingLocality(benchmark::State& state) {
  const bool random_routing = state.range(0) != 0;
  std::vector<std::string> corpus = mixed_corpus();
  for (int values = 10; values <= 27; ++values) {
    corpus.push_back(
        R"({"op":"solve","task":"consensus","procs":2,"values":)" +
        std::to_string(values) + R"(,"max_level":2})");
  }

  std::uint64_t requests = 0;
  double hit_rate = 0.0;
  for (auto _ : state) {
    Cluster cluster(4, random_routing);
    net::LoadgenConfig config = loadgen_config(cluster.endpoint());
    config.iterations = 2;
    const net::LoadgenReport report = net::run_loadgen(corpus, config);
    if (!report.exactly_once()) {
      state.SkipWithError("delivery was not exactly-once through the router");
      break;
    }
    requests += report.received;
    hit_rate = cluster.memo_hit_rate();
  }
  state.counters["qps"] = benchmark::Counter(static_cast<double>(requests),
                                             benchmark::Counter::kIsRate);
  state.counters["random_routing"] = random_routing ? 1.0 : 0.0;
  state.counters["memo_hit_rate"] = hit_rate;
}
BENCHMARK(BM_RoutingLocality)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
