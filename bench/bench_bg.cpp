// E15 -- cost of the Borowsky-Gafni simulation: wall time and safe-
// agreement pressure as simulator count, simulated count, and rounds grow;
// plus the raw SafeAgreement object's latencies.
#include <benchmark/benchmark.h>

#include "bg/safe_agreement.hpp"
#include "bg/simulation.hpp"

namespace {

using namespace wfc;

void BM_SafeAgreementSolo(benchmark::State& state) {
  for (auto _ : state) {
    bg::SafeAgreement<int> sa(static_cast<int>(state.range(0)));
    sa.propose(0, 7);
    auto v = sa.try_resolve();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SafeAgreementSolo)->Arg(2)->Arg(4)->Arg(8);

void BM_SafeAgreementSequentialContenders(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bg::SafeAgreement<int> sa(procs);
    for (int p = 0; p < procs; ++p) sa.propose(p, p);
    auto v = sa.try_resolve();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_SafeAgreementSequentialContenders)->Arg(2)->Arg(4)->Arg(8);

void BM_BgSimulation(benchmark::State& state) {
  bg::BgConfig config;
  config.n_simulators = static_cast<int>(state.range(0));
  config.n_simulated = static_cast<int>(state.range(1));
  config.rounds = static_cast<int>(state.range(2));
  bool legal = true;
  int blocked = 0;
  for (auto _ : state) {
    bg::BgOutcome out = run_bg_simulation(config);
    legal = legal && out.legal();
    blocked = out.blocked;
    benchmark::DoNotOptimize(out);
  }
  state.counters["legal"] = legal ? 1 : 0;
  state.counters["blocked"] = blocked;
}
BENCHMARK(BM_BgSimulation)
    ->Args({1, 3, 2})
    ->Args({2, 3, 2})
    ->Args({3, 3, 2})
    ->Args({2, 4, 2})
    ->Args({2, 3, 4})
    ->Args({4, 6, 2})
    ->Unit(benchmark::kMillisecond);

void BM_BgSimulationWithCrash(benchmark::State& state) {
  bg::BgConfig config;
  config.n_simulators = 2;
  config.n_simulated = 3;
  config.rounds = 2;
  config.crash_in_sa = {static_cast<int>(state.range(0)), -1};
  config.patience = 300;
  int blocked = 0;
  bool legal = true;
  for (auto _ : state) {
    bg::BgOutcome out = run_bg_simulation(config);
    blocked = out.blocked;
    legal = legal && out.legal();
    benchmark::DoNotOptimize(out);
  }
  state.counters["blocked"] = blocked;
  state.counters["legal"] = legal ? 1 : 0;
}
BENCHMARK(BM_BgSimulationWithCrash)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
