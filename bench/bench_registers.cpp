// E9 -- the register substrate on real hardware: latency/throughput of the
// SWMR register, the wait-free atomic snapshot object (Figure 1's
// SnapshotRead), and the Borowsky-Gafni one-shot immediate snapshot.
//
// Note: measurement hosts may be single-core; the threaded series then
// reflects preemptive interleaving rather than true parallelism, which is
// the honest setting for an asynchronous-model substrate anyway.
#include <benchmark/benchmark.h>

#include <barrier>
#include <thread>

#include "registers/atomic_snapshot.hpp"
#include "registers/immediate_snapshot.hpp"
#include "registers/swmr_register.hpp"

namespace {

using namespace wfc;

void BM_SwmrWrite(benchmark::State& state) {
  reg::SwmrRegister<int> r;
  int v = 0;
  for (auto _ : state) {
    r.write(v++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwmrWrite);

void BM_SwmrRead(benchmark::State& state) {
  reg::SwmrRegister<int> r;
  r.write(7);
  for (auto _ : state) {
    auto v = r.read();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwmrRead);

void BM_SwmrReadUnderWriter(benchmark::State& state) {
  static reg::SwmrRegister<int>* r = nullptr;
  static std::thread* writer = nullptr;
  static std::atomic<bool>* stop = nullptr;
  if (state.thread_index() == 0) {
    r = new reg::SwmrRegister<int>();
    stop = new std::atomic<bool>(false);
    writer = new std::thread([&] {
      int v = 0;
      while (!stop->load(std::memory_order_acquire)) r->write(v++);
    });
  }
  for (auto _ : state) {
    auto v = r->read();
    benchmark::DoNotOptimize(v);
  }
  if (state.thread_index() == 0) {
    stop->store(true, std::memory_order_release);
    writer->join();
    delete writer;
    delete r;
    delete stop;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwmrReadUnderWriter)->Threads(1)->Threads(2);

void BM_AtomicSnapshotScan(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  reg::AtomicSnapshot<int> snap(procs);
  for (int p = 0; p < procs; ++p) snap.update(p, p);
  for (auto _ : state) {
    auto view = snap.scan();
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicSnapshotScan)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_AtomicSnapshotUpdate(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  reg::AtomicSnapshot<int> snap(procs);
  int v = 0;
  for (auto _ : state) {
    snap.update(0, v++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicSnapshotUpdate)->Arg(2)->Arg(4)->Arg(8);

void BM_AtomicSnapshotContended(benchmark::State& state) {
  // Each benchmark thread is a processor doing update+scan (Figure 1 body).
  static reg::AtomicSnapshot<int>* snap = nullptr;
  if (state.thread_index() == 0) {
    snap = new reg::AtomicSnapshot<int>(state.threads());
  }
  int v = 0;
  for (auto _ : state) {
    snap->update(state.thread_index(), v++);
    auto view = snap->scan();
    benchmark::DoNotOptimize(view);
  }
  if (state.thread_index() == 0) delete snap;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicSnapshotContended)->Threads(2)->Threads(4)->UseRealTime();

void BM_ImmediateSnapshotSolo(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    reg::ImmediateSnapshot<int> is(procs);
    auto out = is.write_read(0, 1);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImmediateSnapshotSolo)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ImmediateSnapshotFullHouse(benchmark::State& state) {
  // All processors arrive (sequentially here; the levels loop still runs).
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    reg::ImmediateSnapshot<int> is(procs);
    for (int p = 0; p < procs; ++p) {
      auto out = is.write_read(p, p);
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_ImmediateSnapshotFullHouse)->Arg(2)->Arg(4)->Arg(8);

void BM_ImmediateSnapshotThreads(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    reg::ImmediateSnapshot<int> is(procs);
    std::barrier sync(procs);
    std::vector<std::thread> threads;
    for (int p = 0; p < procs; ++p) {
      threads.emplace_back([&, p] {
        sync.arrive_and_wait();
        auto out = is.write_read(p, p);
        benchmark::DoNotOptimize(out);
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_ImmediateSnapshotThreads)->Arg(2)->Arg(4)->Unit(
    benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
