// E21 -- admission control under overload, quantitatively.
//
// A 2-worker service with a deliberately small admission queue is offered
// load at 1x, 4x, and 16x its calibrated capacity (paced open-loop
// arrivals, like impatient JSONL clients).  Per offered multiple we report:
//
//   * offered_qps / completed_qps -- intake vs. goodput (kOk results);
//   * shed_pct                    -- queries answered kOverloaded;
//   * p50_us / p99_us             -- completion latency of ACCEPTED queries
//                                    (submission to future-ready, so queue
//                                    wait counts).
//
// The graceful-degradation claim (PR 3 acceptance): because the queue is
// bounded, overload turns into sheds -- not latency collapse -- so p99 of
// accepted queries at 16x stays within ~2x of the 1x p99, while shed_pct
// climbs with the offered load.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "service/query_service.hpp"
#include "service/status.hpp"
#include "tasks/canonical.hpp"

namespace {

using namespace wfc;

constexpr int kWorkers = 2;
constexpr std::size_t kQueueDepth = 16;
constexpr auto kStormWindow = std::chrono::milliseconds(250);

std::shared_ptr<task::Task> fresh_task() {
  return std::make_shared<task::ConsensusTask>(2, 2);
}

svc::QueryService::Options overload_options() {
  svc::QueryService::Options options;
  options.workers = kWorkers;
  options.max_queue_depth = kQueueDepth;
  options.admission_policy = svc::AdmissionQueue::Policy::kRejectNew;
  options.result_memo_entries = 0;  // every accepted query runs a search
  return options;
}

/// Saturated throughput (queries/s) of a service configured like the storm
/// target but with an unbounded-ish queue: submit a closed batch, measure
/// wall time.  This is the capacity the storm multiplies -- measured under
/// the same worker contention the storm will see, not from sequential
/// latency (which overestimates capacity and would mislabel the 1x point).
double calibrate_capacity_qps() {
  svc::QueryService::Options options = overload_options();
  options.max_queue_depth = 4096;
  svc::QueryService service(options);
  svc::QueryOptions qopts;
  qopts.max_level = 2;
  service.submit(svc::Query::solve(fresh_task(), qopts)).result.get();  // warm the cache
  constexpr int kProbes = 64;
  const auto start = std::chrono::steady_clock::now();
  std::vector<svc::QueryTicket> tickets;
  tickets.reserve(kProbes);
  for (int i = 0; i < kProbes; ++i) {
    tickets.push_back(service.submit(svc::Query::solve(fresh_task(), qopts)));
  }
  for (svc::QueryTicket& t : tickets) t.result.get();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return kProbes / secs;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void BM_ServiceOverload(benchmark::State& state) {
  const auto multiple = static_cast<double>(state.range(0));
  const double capacity_qps = calibrate_capacity_qps();
  svc::QueryService service(overload_options());
  {  // warm the storm service's chain cache outside the measured window
    svc::QueryOptions warm;
    warm.max_level = 2;
    service.submit(svc::Query::solve(fresh_task(), warm)).result.get();
  }
  // Offered inter-arrival gap for `multiple` times the measured capacity.
  const auto gap = std::chrono::nanoseconds(static_cast<std::int64_t>(
      1e9 / (capacity_qps * multiple)));

  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::vector<std::uint64_t> accepted_micros;
  double window_seconds = 0;

  svc::QueryOptions qopts;
  qopts.max_level = 2;
  for (auto _ : state) {
    std::vector<svc::QueryTicket> tickets;
    const auto start = std::chrono::steady_clock::now();
    auto next_arrival = start;
    while (std::chrono::steady_clock::now() - start < kStormWindow) {
      tickets.push_back(service.submit(svc::Query::solve(fresh_task(), qopts)));
      ++offered;
      next_arrival += gap;
      std::this_thread::sleep_until(next_arrival);
    }
    for (svc::QueryTicket& ticket : tickets) {
      svc::QueryResult r = ticket.result.get();
      if (r.status == svc::Status::kOk) {
        ++completed;
        accepted_micros.push_back(r.micros);
      } else if (r.status == svc::Status::kOverloaded) {
        ++shed;
      }
    }
    window_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  }

  std::sort(accepted_micros.begin(), accepted_micros.end());
  state.counters["offered_qps"] =
      static_cast<double>(offered) / window_seconds;
  state.counters["completed_qps"] =
      static_cast<double>(completed) / window_seconds;
  state.counters["shed_pct"] =
      offered == 0 ? 0.0
                   : 100.0 * static_cast<double>(shed) /
                         static_cast<double>(offered);
  state.counters["p50_us"] =
      static_cast<double>(percentile(accepted_micros, 0.50));
  state.counters["p99_us"] =
      static_cast<double>(percentile(accepted_micros, 0.99));
}
BENCHMARK(BM_ServiceOverload)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
