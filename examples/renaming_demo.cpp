// Renaming and set consensus as task instances (§1, §3.2).
//
// The paper singles out set consensus and renaming as the two instances by
// which characterizations are judged.  This demo:
//   * solves (n+1)-name renaming (the identity assignment exists, and the
//     checker finds a level-0 map);
//   * solves 2-processor 3-name renaming and runs the synthesized protocol;
//   * shows the solvable/unsolvable frontier of (n+1, k)-set consensus.
//
// Note on the renaming LOWER bound: as a bare input/output relation,
// M-renaming with ids as inputs always has the trivial solution "P_i takes
// name i".  The classical 2n-renaming impossibility concerns protocols that
// are symmetric in the ids, a property of decision maps, not of Delta; it
// is therefore outside what a task tuple (I, O, Delta) can express and
// outside this demo (the paper proves it with homology in [6]).
//
// Build & run: ./build/examples/renaming_demo
#include <cstdio>

#include "core/wfc.hpp"

int main() {
  using namespace wfc;

  std::printf("== Renaming ==\n");
  for (int procs = 2; procs <= 3; ++procs) {
    for (int names = procs; names <= procs + 1; ++names) {
      task::RenamingTask t(procs, names);
      CharacterizeOptions opts;
      opts.max_level = 1;
      CharacterizationReport rep = characterize(t, opts);
      std::printf("%s\n", rep.summary(t.name()).c_str());
    }
  }

  // Execute the synthesized 2-processor 3-name protocol under contention.
  {
    task::RenamingTask t(2, 3);
    task::SolveResult solved = task::solve(t, 1);
    task::DecisionProtocol protocol(t, std::move(solved));
    rt::RandomAdversary adversary(99);
    bool ok = true;
    for (int run = 0; run < 10; ++run) {
      task::RunOutcome out = protocol.run_simulated({0, 1}, adversary);
      ok = ok && out.valid;
      std::printf("  run %d: P0 -> %s, P1 -> %s  (%s)\n", run,
                  t.output().vertex(out.decisions[0]).key.c_str(),
                  t.output().vertex(out.decisions[1]).key.c_str(),
                  out.valid ? "distinct" : "CLASH");
    }
    if (!ok) return 1;
  }

  std::printf("\n== The (n+1, k)-set consensus frontier ==\n");
  struct Case {
    int procs, k, max_level;
  };
  for (const Case& c : {Case{2, 1, 3}, Case{2, 2, 1}, Case{3, 2, 1},
                        Case{3, 3, 1}}) {
    task::KSetConsensusTask t(c.procs, c.k);
    CharacterizeOptions opts;
    opts.max_level = c.max_level;
    CharacterizationReport rep = characterize(t, opts);
    std::printf("%s\n", rep.summary(t.name()).c_str());
  }
  std::printf("\nThe pattern is the theorem of [5,6,7]: (n+1, k)-set\n"
              "consensus is wait-free solvable iff k = n+1.\n");
  return 0;
}
