// The Borowsky-Gafni simulation, live: wait-free simulators jointly execute
// a full-information snapshot protocol of MORE processors, and a crashed
// simulator blocks at most one simulated processor.
//
// This machinery is how wait-free impossibility results lift to t-resilient
// ones: if 3 simulated processors could solve (3,2)-set consensus
// 1-resiliently, 2 wait-free simulators could run the BG simulation of that
// protocol and decide 2-set consensus for themselves wait-free --
// contradicting the wait-free impossibility this library machine-checks
// (see set_consensus_impossibility).  The paper's techniques seeded exactly
// this line ([7], [10], [11]).
//
// Build & run: ./build/examples/bg_simulation_demo
#include <cstdio>

#include "core/wfc.hpp"

namespace {

void report(const char* label, const wfc::bg::BgOutcome& out) {
  std::printf("  %-26s blocked=%d  rounds/proc=[", label, out.blocked);
  for (std::size_t j = 0; j < out.rounds_completed.size(); ++j) {
    std::printf("%s%d", j ? " " : "", out.rounds_completed[j]);
  }
  std::printf("]  execution legal: %s\n", out.legal() ? "yes" : "NO");
}

}  // namespace

int main() {
  using namespace wfc;

  std::printf("== Borowsky-Gafni simulation ==\n\n");

  std::printf("Crash-free runs (2 simulators, 3 simulated, k=2):\n");
  for (int trial = 0; trial < 3; ++trial) {
    bg::BgConfig config;
    config.n_simulators = 2;
    config.n_simulated = 3;
    config.rounds = 2;
    report("all simulators live", run_bg_simulation(config));
  }

  std::printf("\nCrash injection (simulator 0 dies inside its c-th safe-"
              "agreement window):\n");
  for (int c : {1, 2, 3}) {
    bg::BgConfig config;
    config.n_simulators = 2;
    config.n_simulated = 3;
    config.rounds = 2;
    config.crash_in_sa = {c, -1};
    config.patience = 400;
    char label[40];
    std::snprintf(label, sizeof label, "crash in window #%d", c);
    report(label, run_bg_simulation(config));
  }

  std::printf("\nEach crash blocks at most ONE simulated processor: the\n"
              "surviving simulator finishes everyone else.  That is the\n"
              "t-resilient reduction: t+1 simulators tolerate t crashes\n"
              "while driving n+1 > t+1 simulated processors.\n");
  return 0;
}
