// wfc_loadgen -- drive a wfc_serve --listen server with a request corpus
// and verify exactly-once delivery (see net/loadgen.hpp).
//
// Usage:
//   wfc_loadgen --connect host:port [--corpus FILE] [--connections N]
//               [--iterations N] [--duration-ms N] [--inflight N]
//               [--rate QPS] [--check-metrics] [--cluster] [--out FILE]
//               [--model NAME]... [--model-mix A,B,C]
//
// --model NAME (repeatable) / --model-mix A,B,C add wfc::model wire names
// to the mix: the corpus is expanded to one pass per model with "model"
// spliced into every eligible line (solve / convergence / sds checks), and
// the report counts sends per model ("model_<name>" keys).
//
// Closed loop by default: each connection keeps up to --inflight requests
// outstanding over --iterations passes of the corpus.  --rate switches to
// an open loop paced at QPS across all connections.  --corpus defaults to
// stdin (examples/queries.jsonl shape: flat JSON lines, '#' and blanks
// skipped; any "id" fields are replaced with the generator's own).
//
// Prints one JSON report line (qps, p50/p90/p99/max latency, exactly-once
// accounting) to stdout and, with --out, also writes it to FILE
// (BENCH_net.json in CI).  Exit status: 0 only if every request was
// answered exactly once -- and, with --check-metrics, the server's
// {"op":"metrics"} counters reconcile after the run.
//
// --cluster targets a wfc_router front end: after the run the generator
// fetches {"op":"cluster_stats"} on a fresh connection and prints it as a
// second JSON line (appended to --out as well), so CI and the benches see
// per-shard routing, hedge, and re-dispatch counts next to the delivery
// report.  Fails if the server does not answer cluster_stats.
//
// Example:
//   wfc_serve --listen 127.0.0.1:7411 &
//   wfc_loadgen --connect 127.0.0.1:7411 --connections 16 --iterations 20
//               --corpus examples/queries.jsonl --check-metrics
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/loadgen.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: wfc_loadgen --connect host:port [--corpus FILE]\n"
      "                   [--connections N] [--iterations N]\n"
      "                   [--duration-ms N] [--inflight N] [--rate QPS]\n"
      "                   [--check-metrics] [--cluster] [--out FILE]\n"
      "                   [--model NAME]... [--model-mix A,B,C]\n"
      "Reads the corpus from FILE (default stdin), drives the server, and\n"
      "prints a JSON report line.  Exit 0 only on exactly-once delivery.\n"
      "  --cluster  also fetch and print {\"op\":\"cluster_stats\"} from\n"
      "             a wfc_router front end after the run\n"
      "  --model / --model-mix  splice wfc::model names into eligible\n"
      "             corpus lines, one corpus pass per model\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  std::string corpus_path;
  std::string out_path;
  bool cluster = false;
  wfc::net::LoadgenConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--connect" && (value = next())) {
      connect = value;
    } else if (arg == "--corpus" && (value = next())) {
      corpus_path = value;
    } else if (arg == "--out" && (value = next())) {
      out_path = value;
    } else if (arg == "--connections" && (value = next())) {
      config.connections = std::atoi(value);
    } else if (arg == "--iterations" && (value = next())) {
      config.iterations = std::atoi(value);
    } else if (arg == "--duration-ms" && (value = next())) {
      config.duration = std::chrono::milliseconds(std::atol(value));
    } else if (arg == "--inflight" && (value = next())) {
      config.max_inflight = static_cast<std::size_t>(std::atol(value));
    } else if (arg == "--rate" && (value = next())) {
      config.rate = std::atof(value);
    } else if (arg == "--model" && (value = next())) {
      config.models.emplace_back(value);
    } else if (arg == "--model-mix" && (value = next())) {
      std::string mix = value;
      std::size_t pos = 0;
      while (pos <= mix.size()) {
        const std::size_t comma = mix.find(',', pos);
        const std::string name =
            mix.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (!name.empty()) config.models.push_back(name);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--check-metrics") {
      config.check_metrics = true;
    } else if (arg == "--cluster") {
      cluster = true;
    } else {
      return usage();
    }
  }
  if (connect.empty() || config.connections <= 0 ||
      config.max_inflight == 0) {
    return usage();
  }

  try {
    config.server = wfc::net::parse_endpoint(connect);
    std::vector<std::string> corpus;
    if (corpus_path.empty()) {
      corpus = wfc::net::load_corpus(std::cin);
    } else {
      std::ifstream file(corpus_path);
      if (!file) {
        std::fprintf(stderr, "wfc_loadgen: cannot open corpus \"%s\"\n",
                     corpus_path.c_str());
        return 1;
      }
      corpus = wfc::net::load_corpus(file);
    }

    const wfc::net::LoadgenReport report =
        wfc::net::run_loadgen(corpus, config);
    const std::string json = report.to_json();
    std::printf("%s\n", json.c_str());
    std::string cluster_stats;
    if (cluster) {
      // A fresh connection so the control op is not gated behind any of
      // the run's own (already drained) requests.
      wfc::net::Client probe(wfc::net::ClientConfig{config.server});
      cluster_stats =
          probe.roundtrip(R"({"id":"loadgen-cluster","op":"cluster_stats"})");
      std::printf("%s\n", cluster_stats.c_str());
      if (cluster_stats.find("\"status\":\"ok\"") == std::string::npos) {
        std::fprintf(stderr,
                     "wfc_loadgen: --cluster: server did not answer "
                     "cluster_stats (not a wfc_router?)\n");
        return 1;
      }
    }
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "wfc_loadgen: cannot write \"%s\"\n",
                     out_path.c_str());
        return 1;
      }
      out << json << "\n";
      if (!cluster_stats.empty()) out << cluster_stats << "\n";
    }
    if (!report.exactly_once()) {
      std::fprintf(stderr,
                   "wfc_loadgen: delivery NOT exactly-once (lost=%llu "
                   "duplicates=%llu unmatched=%llu)\n",
                   static_cast<unsigned long long>(report.lost),
                   static_cast<unsigned long long>(report.duplicates),
                   static_cast<unsigned long long>(report.unmatched));
      return 1;
    }
    if (report.metrics_reconcile && !*report.metrics_reconcile) {
      std::fprintf(stderr,
                   "wfc_loadgen: server metrics did not reconcile\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wfc_loadgen: %s\n", e.what());
    return 1;
  }
}
