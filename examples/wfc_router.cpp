// wfc_router -- the consistent-hash routing tier in front of wfc_serve
// shards (cluster/router.hpp).
//
// Accepts the same JSONL v2 lines over TCP as a single wfc_serve, hashes
// each query's task fingerprint onto the shard ring, and proxies over
// pooled connections with hedging, breakers, and exactly-once id splicing.
// SIGTERM / SIGINT drain the front door gracefully (inflight queries
// finish and flush), then stop the router.
//
// Usage:
//   wfc_router --listen host:port --shard id=host:port [--shard ...]
//              [--port-file PATH] [--io-threads N] [--vnodes N]
//              [--conns-per-shard N] [--hedge-fraction F]
//              [--hedge-after-ms N] [--max-pending N] [--no-admin-ops]
//              [--no-obs] [--router-id S] [--random-routing] [--quiet]
//              [--probe-interval-ms N] [--probe-timeout-ms N]
//              [--probe-down-after N] [--retry-budget N]
//              [--retry-budget-per-sec F] [--no-deadline-propagation]
//
// Active probing is ON here (1s interval) unlike the library default;
// --probe-interval-ms 0 turns it off.
//
// Example (three local shards):
//   wfc_serve --listen :0 --port-file s1.port --shard-id s1 &
//   ...
//   wfc_router --listen 127.0.0.1:7500 --shard s1=127.0.0.1:$(cat s1.port)
//     --shard s2=127.0.0.1:$(cat s2.port) --shard s3=127.0.0.1:$(cat s3.port)
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "net/server.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: wfc_router --listen host:port --shard id=host:port ...\n"
      "                  [--port-file PATH] [--io-threads N] [--vnodes N]\n"
      "                  [--conns-per-shard N] [--hedge-fraction F]\n"
      "                  [--hedge-after-ms N] [--max-pending N]\n"
      "                  [--no-admin-ops] [--no-obs] [--router-id S]\n"
      "                  [--random-routing] [--quiet]\n"
      "                  [--probe-interval-ms N] [--probe-timeout-ms N]\n"
      "                  [--probe-down-after N] [--retry-budget N]\n"
      "                  [--retry-budget-per-sec F]\n"
      "                  [--no-deadline-propagation]\n"
      "                  [--store-dir PATH] [--store-readonly]\n"
      "                  [--store-max-bytes N]\n"
      "Routes JSONL v2 queries to wfc_serve shards by consistent hash of\n"
      "the task fingerprint.  \"--listen :0\" binds an ephemeral port;\n"
      "--port-file writes it once accepting.\n"
      "{\"op\":\"store\"} fans out to every shard and aggregates; the\n"
      "--store-* flags document the cluster store posture (--store-readonly\n"
      "makes this router refuse to forward publish).\n");
  return 2;
}

/// "id=host:port" -> ShardSpec.  Throws std::invalid_argument.
wfc::cluster::ShardSpec parse_shard(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("--shard expects id=host:port, got \"" +
                                spec + "\"");
  }
  wfc::cluster::ShardSpec out;
  out.id = spec.substr(0, eq);
  out.addr = wfc::net::parse_endpoint(spec.substr(eq + 1));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  wfc::cluster::RouterConfig config;
  std::string listen_spec;
  std::string port_file;
  int io_threads = 0;
  bool quiet = false;
  bool observability = true;
  // The binary probes by default; tests construct RouterConfig directly
  // and opt in, so the library default stays 0.
  config.probe_interval = std::chrono::milliseconds(1'000);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_str = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return !out.empty();
    };
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) return false;
      out = std::atoi(argv[++i]);
      return out > 0;
    };
    std::string value;
    int number = 0;
    try {
      if (arg == "--listen" && next_str(listen_spec)) {
      } else if (arg == "--shard" && next_str(value)) {
        config.shards.push_back(parse_shard(value));
      } else if (arg == "--port-file" && next_str(port_file)) {
      } else if (arg == "--io-threads" && next_int(io_threads)) {
      } else if (arg == "--vnodes" && next_int(number)) {
        config.vnodes = number;
      } else if (arg == "--conns-per-shard" && next_int(number)) {
        config.conns_per_shard = number;
      } else if (arg == "--hedge-fraction" && i + 1 < argc) {
        config.hedge_fraction = std::atof(argv[++i]);
      } else if (arg == "--hedge-after-ms" && next_int(number)) {
        config.hedge_after = std::chrono::milliseconds(number);
      } else if (arg == "--max-pending" && next_int(number)) {
        config.max_pending = static_cast<std::size_t>(number);
      } else if (arg == "--no-admin-ops") {
        config.admin_ops = false;
      } else if (arg == "--no-obs") {
        observability = false;
      } else if (arg == "--router-id" && next_str(value)) {
        config.router_id = value;
      } else if (arg == "--random-routing") {
        config.random_routing = true;
      } else if (arg == "--probe-interval-ms" && i + 1 < argc) {
        config.probe_interval = std::chrono::milliseconds(std::atoi(argv[++i]));
      } else if (arg == "--probe-timeout-ms" && next_int(number)) {
        config.probe_timeout = std::chrono::milliseconds(number);
      } else if (arg == "--probe-down-after" && next_int(number)) {
        config.probe_down_after = number;
      } else if (arg == "--retry-budget" && i + 1 < argc) {
        // 0 disables both buckets (burst <= 0 always grants).
        config.retry_budget_burst = std::atoi(argv[++i]);
        config.shard_retry_budget_burst = config.retry_budget_burst;
      } else if (arg == "--retry-budget-per-sec" && i + 1 < argc) {
        config.retry_budget_per_sec = std::atof(argv[++i]);
        config.shard_retry_budget_per_sec = config.retry_budget_per_sec / 2;
      } else if (arg == "--no-deadline-propagation") {
        config.propagate_deadlines = false;
      } else if (arg == "--store-dir" && next_str(value)) {
        config.store_dir = value;
      } else if (arg == "--store-readonly") {
        config.store_readonly = true;
      } else if (arg == "--store-max-bytes" && i + 1 < argc) {
        config.store_max_bytes = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        return usage();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wfc_router: %s\n", e.what());
      return 2;
    }
  }
  if (listen_spec.empty() || config.shards.empty()) return usage();
  config.obs.enabled = observability;
  if (!quiet) {
    config.log = [](const std::string& note) {
      std::fprintf(stderr, "wfc_router: %s\n", note.c_str());
    };
  }

  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    std::fprintf(stderr, "wfc_router: pthread_sigmask failed\n");
    return 1;
  }

  try {
    wfc::cluster::Router router(std::move(config));
    router.start();

    wfc::net::ServerConfig server_config;
    server_config.listen = wfc::net::parse_endpoint(listen_spec);
    if (io_threads > 0) server_config.io_threads = io_threads;
    wfc::net::Server server(router, server_config);
    server.start();
    std::fprintf(stderr, "wfc_router: listening on %s port %u (%zu shards)\n",
                 server_config.listen.host.c_str(), server.port(),
                 router.shard_count());
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) {
        std::fprintf(stderr, "wfc_router: cannot write port file \"%s\"\n",
                     port_file.c_str());
        return 1;
      }
      out << server.port() << "\n";
    }

    int sig = 0;
    while (sigwait(&mask, &sig) != 0) {
    }
    std::fprintf(stderr, "wfc_router: %s, draining\n", strsignal(sig));
    server.drain();
    router.stop();
    const wfc::cluster::Router::Stats s = router.stats();
    if (!quiet) {
      std::fprintf(stderr,
                   "wfc_router: requests=%llu responses=%llu hedges=%llu "
                   "hedge_wins=%llu redispatches=%llu timeouts=%llu "
                   "failed=%llu rejected=%llu\n",
                   static_cast<unsigned long long>(s.requests),
                   static_cast<unsigned long long>(s.responses),
                   static_cast<unsigned long long>(s.hedges),
                   static_cast<unsigned long long>(s.hedge_wins),
                   static_cast<unsigned long long>(s.redispatches),
                   static_cast<unsigned long long>(s.timeouts),
                   static_cast<unsigned long long>(s.failed),
                   static_cast<unsigned long long>(s.rejected));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wfc_router: %s\n", e.what());
    return 1;
  }
}
