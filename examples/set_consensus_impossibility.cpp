// (n+1, n)-set consensus is wait-free impossible -- the theorem that seeded
// this whole line of work (Chaudhuri's conjecture, §1; proved by [5,6,7]).
//
// This example shows both halves of the argument our library can make:
//
//   * PER-LEVEL REFUTATION: the Prop 3.1 search proves there is no decision
//     map from SDS^b(I) for each small b -- an exact, machine-checked
//     impossibility for those levels.
//
//   * ALL-LEVEL ARGUMENT VIA SPERNER: any decision map for (n+1, n)-set
//     consensus labels each vertex of SDS^b(s^n) with a participating
//     processor's id -- a Sperner labeling whose panchromatic simplices are
//     exactly the executions deciding n+1 DISTINCT ids.  Sperner's lemma
//     says every Sperner labeling of a subdivided simplex has an odd (hence
//     nonzero) number of panchromatic facets, so at EVERY level some
//     execution violates the task.  We verify the lemma exhaustively on
//     SDS^b for b = 1, 2 and many random labelings.
//
// Build & run: ./build/examples/set_consensus_impossibility
#include <cstdio>

#include "core/wfc.hpp"

int main() {
  using namespace wfc;

  std::printf("== (n+1, n)-set consensus impossibility ==\n\n");

  // --- Per-level refutation by exact search. -------------------------------
  {
    task::KSetConsensusTask t21(2, 1);  // 2 processors, consensus
    CharacterizeOptions opts;
    opts.max_level = 3;
    CharacterizationReport rep = characterize(t21, opts);
    std::printf("%s\n", rep.summary(t21.name()).c_str());
  }
  {
    task::KSetConsensusTask t32(3, 2);  // Chaudhuri's instance
    CharacterizeOptions opts;
    opts.max_level = 1;
    CharacterizationReport rep = characterize(t32, opts);
    std::printf("%s\n", rep.summary(t32.name()).c_str());
  }
  // Contrast: k = n+1 is trivially solvable (decide yourself).
  {
    task::KSetConsensusTask t33(3, 3);
    CharacterizeOptions opts;
    opts.max_level = 1;
    CharacterizationReport rep = characterize(t33, opts);
    std::printf("%s\n\n", rep.summary(t33.name()).c_str());
  }

  // --- The Sperner argument, exhaustively for small b. ---------------------
  std::printf("Sperner's lemma on SDS^b(s^n): panchromatic facets are odd\n");
  Rng rng(7);
  bool all_odd = true;
  for (int n = 1; n <= 2; ++n) {
    for (int b = 1; b <= 2; ++b) {
      topo::ChromaticComplex sds =
          topo::iterated_sds(topo::base_simplex(n + 1), b);
      std::uint64_t min_pan = ~0ull, max_pan = 0;
      for (int trial = 0; trial < 200; ++trial) {
        topo::Labeling lab = topo::random_sperner_labeling(sds, rng);
        const std::uint64_t pan = topo::count_panchromatic(sds, lab);
        all_odd = all_odd && (pan % 2 == 1);
        min_pan = std::min(min_pan, pan);
        max_pan = std::max(max_pan, pan);
      }
      std::printf("  n=%d b=%d (%5zu facets): panchromatic in [%llu, %llu], "
                  "all odd: %s\n",
                  n, b, sds.num_facets(),
                  static_cast<unsigned long long>(min_pan),
                  static_cast<unsigned long long>(max_pan),
                  all_odd ? "yes" : "NO");
    }
  }

  std::printf("\nConclusion: every decision map induces a Sperner labeling;\n"
              "odd => nonzero panchromatic facets => some execution decides\n"
              "n+1 distinct ids => (n+1, n)-set consensus is unsolvable at\n"
              "EVERY level b, hence wait-free unsolvable (Prop 3.1 + §4).\n");
  return all_odd ? 0 : 1;
}
