// wfc_cli -- decide wait-free solvability from the command line.
//
// Usage:
//   wfc_cli consensus <procs> <values> [max_level]
//   wfc_cli set-consensus <procs> <k> [max_level]
//   wfc_cli renaming <procs> <names> [max_level]
//   wfc_cli approx <procs> <grid> [max_level]
//   wfc_cli simplex-agreement <procs> <target_depth> [max_level]
//   wfc_cli resilient-consensus <procs> <t> [max_level]
//   wfc_cli resilient-set-consensus <procs> <k>:<t> [max_level]   (e.g. 2:1)
//   wfc_cli check <target> <procs> <rounds> [crashes]
//   wfc_cli serve [workers] [max_level]
//   wfc_cli metrics [workers]
//   wfc_cli trace <out.json> [workers]
//
// Global options (before the subcommand):
//   --retries N        retry queries whose terminal status is retryable
//                      (overloaded / resource_exhausted) up to N times,
//                      sleeping the service's retry_after_ms hint scaled by
//                      exponential backoff with jitter between attempts.
//   --connect H:P      run the query against a remote wfc_serve --listen
//                      server instead of an in-process service.  The task,
//                      check, and metrics subcommands translate to one
//                      JSONL request; `pipe` forwards stdin lines verbatim
//                      and prints responses as they arrive (out of order --
//                      match on the "id" echo).
//
// Prints the characterization verdict, and for solvable tasks also runs the
// synthesized protocol once on real threads as a liveness check.  The
// resilient-* forms answer the t-resilient question for colorless tasks via
// the BG reduction.  `check` runs the wfc::chk model checker (target: sds,
// emulation, or linearizability) over every bounded schedule.  `serve`
// turns the CLI into a JSON-lines query server over stdin/stdout (see
// service/frontend.hpp for the line protocol).  `metrics` is serve with
// result lines on stderr and the Prometheus text exposition on stdout at
// EOF; `trace` is serve plus a Chrome trace_event JSON file written at EOF
// (open it in chrome://tracing or Perfetto).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "check/conformance.hpp"
#include "check/sds_check.hpp"
#include "common/rng.hpp"
#include "core/wfc.hpp"
#include "net/client.hpp"
#include "service/frontend.hpp"
#include "service/jsonl.hpp"
#include "service/query_service.hpp"
#include "service/status.hpp"

namespace {

using namespace wfc;

int usage() {
  std::fprintf(stderr,
               "usage: wfc_cli [--retries N] [--connect H:P] <task> "
               "<args...> [max_level]\n"
               "  consensus <procs> <values>\n"
               "  set-consensus <procs> <k>\n"
               "  renaming <procs> <names>\n"
               "  approx <procs> <grid>\n"
               "  simplex-agreement <procs> <target_depth>\n"
               "  check <sds|emulation|linearizability> <procs> <rounds> "
               "[crashes]\n"
               "  serve [workers] [max_level]   (JSON-lines on stdin)\n"
               "  metrics [workers]             (serve; Prometheus text to "
               "stdout at EOF)\n"
               "  trace <out.json> [workers]    (serve; Chrome trace to file "
               "at EOF)\n"
               "With --connect: task subcommands, check, metrics, and info "
               "send one\nJSONL request to a wfc_serve --listen server; "
               "`pipe` forwards stdin\nlines.  Against a wfc_router:\n"
               "  cluster [stats]               routing/hedge counters\n"
               "  cluster drain <shard>         stop routing new keys to it\n"
               "  cluster add <shard> <H:P>     join a shard to the ring\n"
               "  cluster remove <shard>        hard-detach a shard\n"
               "Chain-store control plane (server or router):\n"
               "  store [stats]                 store/cache gauges\n"
               "  store warm                    admit every stored chain\n"
               "  store shed [percent]          drop ~percent of residency\n"
               "  store pin <fingerprint>       pin a tower against "
               "eviction\n"
               "  store unpin <fingerprint>     release the pin\n"
               "  store publish                 flush resident chains to "
               "disk\n");
  return 2;
}

/// `wfc_cli --connect`: translate the subcommand into one JSONL request
/// line, round-trip it over TCP, and print the raw result envelope.  The
/// exit code follows the transport "status" field: 0 for ok, 1 otherwise.
int connect_command(const std::string& endpoint, int argc, char** argv) {
  net::Client client(net::ClientConfig{net::parse_endpoint(endpoint)});
  const std::string name = argc > 1 ? argv[1] : "";

  if (name == "pipe") {
    // Forward stdin verbatim; print responses as they arrive.  Half-close
    // after the last line so the server answers everything, then EOFs.
    std::string line;
    while (std::getline(std::cin, line)) client.send_line(line);
    client.shutdown_write();
    while (std::optional<std::string> response = client.recv_line()) {
      std::printf("%s\n", response->c_str());
    }
    return 0;
  }

  std::string request;
  if (name == "metrics") {
    request = R"({"id":"cli","op":"metrics"})";
  } else if (name == "info") {
    request = R"({"id":"cli","op":"info"})";
  } else if (name == "cluster") {
    // Router control plane (cluster/router.hpp): stats, drain, add, remove.
    const std::string verb = argc > 2 ? argv[2] : "stats";
    if (verb == "stats") {
      request = R"({"id":"cli","op":"cluster_stats"})";
    } else if (verb == "drain" && argc > 3) {
      request = std::string(R"({"id":"cli","op":"cluster_drain","shard":")") +
                argv[3] + R"("})";
    } else if (verb == "remove" && argc > 3) {
      request = std::string(R"({"id":"cli","op":"cluster_remove","shard":")") +
                argv[3] + R"("})";
    } else if (verb == "add" && argc > 4) {
      const net::Endpoint addr = net::parse_endpoint(argv[4]);
      request = std::string(R"({"id":"cli","op":"cluster_add","shard":")") +
                argv[3] + R"(","host":")" + addr.host + R"(","port":)" +
                std::to_string(addr.port) + "}";
    } else {
      return usage();
    }
  } else if (name == "store") {
    // Unified store op family (service/handler.hpp; a wfc_router fans the
    // same line out to every shard and aggregates).
    const std::string verb = argc > 2 ? argv[2] : "stats";
    if (verb == "stats" || verb == "warm" || verb == "publish") {
      request = std::string(R"({"id":"cli","op":"store","action":")") + verb +
                R"("})";
    } else if (verb == "shed") {
      request = std::string(R"({"id":"cli","op":"store","action":"shed")");
      if (argc > 3) {
        request +=
            R"(,"percent":)" + std::to_string(std::atoi(argv[3]));
      }
      request += "}";
    } else if ((verb == "pin" || verb == "unpin") && argc > 3) {
      request = std::string(R"({"id":"cli","op":"store","action":")") + verb +
                R"(","fingerprint":")" + argv[3] + R"("})";
    } else {
      return usage();
    }
  } else if (name == "check" && argc >= 5) {
    request = std::string(R"({"id":"cli","op":"check","target":")") +
              argv[2] + R"(","procs":)" + std::to_string(std::atoi(argv[3])) +
              R"(,"rounds":)" + std::to_string(std::atoi(argv[4]));
    if (argc > 5) {
      request += R"(,"crashes":)" + std::to_string(std::atoi(argv[5]));
    }
    request += "}";
  } else if (argc >= 4) {
    // Task families: the per-family parameter key matches the corpus shape
    // (see examples/queries.jsonl and service/handler.hpp).
    std::string param;
    if (name == "consensus") param = "values";
    if (name == "set-consensus") param = "k";
    if (name == "renaming") param = "names";
    if (name == "approx") param = "grid";
    if (name == "simplex-agreement") param = "depth";
    if (param.empty()) return usage();
    request = std::string(R"({"id":"cli","op":"solve","task":")") + name +
              R"(","procs":)" + std::to_string(std::atoi(argv[2])) + ",\"" +
              param + "\":" + std::to_string(std::atoi(argv[3]));
    if (argc > 4) {
      request += R"(,"max_level":)" + std::to_string(std::atoi(argv[4]));
    }
    request += "}";
  } else {
    return usage();
  }

  const std::string response = client.roundtrip(request);
  std::printf("%s\n", response.c_str());
  try {
    const auto fields = svc::parse_flat_json(response);
    const auto it = fields.find("status");
    return it != fields.end() && it->second == "ok" ? 0 : 1;
  } catch (const std::exception&) {
    return 1;
  }
}

/// Submits `query` up to 1 + retries times, backing off between attempts on
/// retryable statuses (overloaded / resource_exhausted): the service's
/// retry_after_ms hint (or 50ms) doubles per attempt, capped at 5s, with
/// uniform jitter in [0.5, 1.5) to decorrelate retrying clients.
svc::QueryResult submit_with_retries(svc::QueryService& service,
                                     const svc::Query& query, int retries) {
  Rng rng(test_seed(0x5eedull));
  svc::QueryResult result;
  for (int attempt = 0;; ++attempt) {
    result = service.submit(query).result.get();
    if (!svc::is_retryable(result.status) || attempt >= retries) return result;
    std::uint64_t base_ms =
        result.retry_after_ms > 0 ? result.retry_after_ms : 50;
    base_ms = std::min<std::uint64_t>(base_ms << attempt, 5'000);
    const auto sleep_ms =
        static_cast<std::uint64_t>(static_cast<double>(base_ms) *
                                   (0.5 + rng.unit()));
    std::fprintf(stderr,
                 "wfc_cli: %s, retrying in %llu ms (attempt %d/%d)\n",
                 svc::to_cstring(result.status),
                 static_cast<unsigned long long>(sleep_ms), attempt + 1,
                 retries);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

/// `wfc_cli check`: run one wfc::chk query through the service layer and
/// print the verdict plus the service's CheckStats line.
int check_command(const std::string& target, int procs, int rounds,
                  int crashes, int retries) {
  svc::CheckRequest check;
  if (target == "sds") {
    check.target = svc::CheckRequest::Target::kSds;
  } else if (target == "emulation") {
    check.target = svc::CheckRequest::Target::kEmulation;
  } else if (target == "linearizability") {
    check.target = svc::CheckRequest::Target::kLinearizability;
  } else {
    return usage();
  }
  check.procs = procs;
  check.rounds = rounds;
  check.crashes = crashes;
  svc::Query query = svc::Query::check(check);

  svc::QueryService service;
  svc::QueryResult result = submit_with_retries(service, query, retries);
  if (result.status != svc::Status::kOk) {
    std::fprintf(stderr, "check failed (%s): %s\n",
                 svc::to_cstring(result.status), result.error.c_str());
    return 2;
  }
  std::printf("check %s procs=%d rounds=%d crashes=%d: %s\n", target.c_str(),
              procs, rounds, crashes,
              result.check_ok ? "OK" : "VIOLATION");
  std::printf("  schedules=%llu histories=%llu max_depth=%llu (%llu us)\n",
              static_cast<unsigned long long>(result.check_schedules),
              static_cast<unsigned long long>(result.check_histories),
              static_cast<unsigned long long>(result.check_max_depth),
              static_cast<unsigned long long>(result.micros));
  if (!result.check_violation.empty()) {
    std::printf("  violation: %s\n", result.check_violation.c_str());
  }
  std::printf("  %s\n", service.stats().to_string().c_str());
  return result.check_ok ? 0 : 1;
}

std::unique_ptr<task::Task> make_task(const std::string& name, int a, int b) {
  if (name == "consensus") return std::make_unique<task::ConsensusTask>(a, b);
  if (name == "set-consensus") {
    return std::make_unique<task::KSetConsensusTask>(a, b);
  }
  if (name == "renaming") return std::make_unique<task::RenamingTask>(a, b);
  if (name == "approx") {
    return std::make_unique<task::ApproxAgreementTask>(a, b);
  }
  if (name == "simplex-agreement") {
    return std::make_unique<task::SimplexAgreementTask>(
        a, topo::iterated_sds(topo::base_simplex(a), b));
  }
  return nullptr;
}

}  // namespace

int resilient_command(const std::string& name, int procs, const char* arg,
                      int max_level) {
  using namespace wfc::task;
  ColorlessSpec spec;
  int t = 0;
  if (name == "resilient-consensus") {
    spec = colorless_consensus(2);
    t = std::atoi(arg);
  } else {
    const std::string kt = arg;
    const auto colon = kt.find(':');
    if (colon == std::string::npos) return usage();
    const int k = std::atoi(kt.substr(0, colon).c_str());
    t = std::atoi(kt.substr(colon + 1).c_str());
    spec = colorless_set_consensus(k, procs);
  }
  ResilienceVerdict v = decide_t_resilient(spec, procs, t, max_level);
  std::printf("%s with %d processors tolerating %d failures: %s",
              spec.name.c_str(), procs, t, to_cstring(v.status));
  if (v.status == Solvability::kSolvable) {
    std::printf(" (wait-free witness at level %d for %d processors)",
                v.wait_free_level, t + 1);
  }
  std::printf("\n");
  return 0;
}

int main(int argc, char** argv) {
  int retries = 0;
  std::string connect;
  while (argc >= 3) {
    if (std::string(argv[1]) == "--retries") {
      retries = std::atoi(argv[2]);
      if (retries < 0) return usage();
    } else if (std::string(argv[1]) == "--connect") {
      connect = argv[2];
      if (connect.empty()) return usage();
    } else {
      break;
    }
    argv += 2;
    argc -= 2;
  }
  if (!connect.empty()) {
    try {
      return connect_command(connect, argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wfc_cli: %s\n", e.what());
      return 1;
    }
  }
  if (argc >= 2 && std::string(argv[1]) == "serve") {
    wfc::svc::ServeConfig config;
    if (argc > 2) config.service.workers = std::atoi(argv[2]);
    if (argc > 3) config.default_max_level = std::atoi(argv[3]);
    const int errors =
        wfc::svc::run_jsonl_server(std::cin, std::cout, std::cerr, config);
    return errors == 0 ? 0 : 1;
  }
  if (argc >= 2 && std::string(argv[1]) == "metrics") {
    // Result lines go to stderr so stdout is exactly the Prometheus text
    // exposition -- pipeable into a scrape file.
    wfc::svc::ServeConfig config;
    if (argc > 2) config.service.workers = std::atoi(argv[2]);
    config.prometheus_at_eof = &std::cout;
    const int errors =
        wfc::svc::run_jsonl_server(std::cin, std::cerr, std::cerr, config);
    return errors == 0 ? 0 : 1;
  }
  if (argc >= 3 && std::string(argv[1]) == "trace") {
    wfc::svc::ServeConfig config;
    config.trace_path_at_eof = argv[2];
    if (argc > 3) config.service.workers = std::atoi(argv[3]);
    const int errors =
        wfc::svc::run_jsonl_server(std::cin, std::cout, std::cerr, config);
    return errors == 0 ? 0 : 1;
  }
  if (argc >= 5 && std::string(argv[1]) == "check") {
    return check_command(argv[2], std::atoi(argv[3]), std::atoi(argv[4]),
                         argc > 5 ? std::atoi(argv[5]) : 0, retries);
  }
  if (argc < 4) return usage();
  const std::string name = argv[1];
  const int a = std::atoi(argv[2]);
  const int b = std::atoi(argv[3]);
  const int max_level = argc > 4 ? std::atoi(argv[4]) : 2;

  if (name.rfind("resilient-", 0) == 0) {
    return resilient_command(name, a, argv[3], max_level);
  }

  std::unique_ptr<task::Task> t;
  try {
    t = make_task(name, a, b);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid parameters: %s\n", e.what());
    return 2;
  }
  if (!t) return usage();

  CharacterizeOptions opts;
  opts.max_level = max_level;
  CharacterizationReport rep = characterize(*t, opts);
  std::printf("%s\n", rep.summary(t->name()).c_str());

  if (rep.status == task::Solvability::kSolvable) {
    task::SolveResult solved = task::solve(*t, max_level);
    task::DecisionProtocol protocol(*t, std::move(solved));
    const topo::Simplex& facet = t->input().facets().front();
    task::RunOutcome out = protocol.run_threads(facet);
    std::printf("live run on %zu threads: ", facet.size());
    for (std::size_t i = 0; i < out.decisions.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  t->output().vertex(out.decisions[i]).key.c_str());
    }
    std::printf("  [%s]\n", out.valid ? "valid" : "INVALID");
    return out.valid ? 0 : 1;
  }
  return 0;
}
