// wfc_chaosnet -- the seeded TCP fault-injection proxy for the cluster
// tier (net/chaosproxy.hpp).
//
// Sits between wfc_router and its wfc_serve shards: each --link is one
// listening port relaying to one shard, and the JSONL admin port flips
// fault regimes at runtime, so CI soaks and experiments can partition,
// slow, corrupt, or reset a live cluster mid-load:
//
//   wfc_serve --listen :0 --port-file s1.port &
//   wfc_chaosnet --link s1=:0=127.0.0.1:$(cat s1.port) --admin :0
//                --port-file chaos.ports --seed 42 &
//   wfc_router --shard s1=127.0.0.1:$(grep '^s1=' chaos.ports | cut -d= -f2) ...
//   printf '{"op":"fault","link":"s1","mode":"blackhole"}\n' | ...admin...
//
// --port-file writes one "name=port" line per link plus "admin=port", so
// scripts with ephemeral ports can wire the tiers together.  SIGTERM /
// SIGINT stop the proxy (flows close; shards and router survive).
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "net/chaosproxy.hpp"
#include "net/server.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: wfc_chaosnet --link id=listenhost:port=upstreamhost:port ...\n"
      "                    --admin host:port [--port-file PATH] [--seed N]\n"
      "                    [--quiet]\n"
      "Relays each --link's TCP bytes to its upstream under a runtime-\n"
      "switchable fault regime; the JSONL admin port takes\n"
      "  {\"op\":\"fault\",\"link\":...,\"mode\":...}, {\"op\":\"chaos_stats\"}.\n"
      "\"--link s1=:0=...\" binds an ephemeral port; --port-file records\n"
      "every bound port as name=port lines (admin included).\n");
  return 2;
}

/// "id=listenhost:port=upstreamhost:port" -> ChaosLinkSpec.
wfc::net::ChaosLinkSpec parse_link(const std::string& spec) {
  const std::size_t first = spec.find('=');
  const std::size_t second =
      first == std::string::npos ? std::string::npos : spec.find('=', first + 1);
  if (first == std::string::npos || first == 0 ||
      second == std::string::npos || second + 1 >= spec.size()) {
    throw std::invalid_argument(
        "--link expects id=listen:port=upstream:port, got \"" + spec + "\"");
  }
  wfc::net::ChaosLinkSpec out;
  out.id = spec.substr(0, first);
  out.listen = wfc::net::parse_endpoint(spec.substr(first + 1, second - first - 1));
  out.upstream = wfc::net::parse_endpoint(spec.substr(second + 1));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  wfc::net::ChaosProxyConfig config;
  std::string admin_spec;
  std::string port_file;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_str = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return !out.empty();
    };
    std::string value;
    try {
      if (arg == "--link" && next_str(value)) {
        config.links.push_back(parse_link(value));
      } else if (arg == "--admin" && next_str(admin_spec)) {
      } else if (arg == "--port-file" && next_str(port_file)) {
      } else if (arg == "--seed" && next_str(value)) {
        config.seed = std::strtoull(value.c_str(), nullptr, 0);
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        return usage();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wfc_chaosnet: %s\n", e.what());
      return 2;
    }
  }
  if (config.links.empty() || admin_spec.empty()) return usage();
  if (!quiet) {
    config.log = [](const std::string& note) {
      std::fprintf(stderr, "wfc_chaosnet: %s\n", note.c_str());
    };
  }

  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    std::fprintf(stderr, "wfc_chaosnet: pthread_sigmask failed\n");
    return 1;
  }

  try {
    std::vector<std::string> link_ids;
    for (const auto& link : config.links) link_ids.push_back(link.id);
    wfc::net::ChaosProxy proxy(std::move(config));
    proxy.start();

    wfc::net::ServerConfig admin_config;
    admin_config.listen = wfc::net::parse_endpoint(admin_spec);
    admin_config.io_threads = 1;
    wfc::net::Server admin(proxy, admin_config);
    admin.start();

    std::fprintf(stderr, "wfc_chaosnet: admin on port %u\n", admin.port());
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) {
        std::fprintf(stderr, "wfc_chaosnet: cannot write port file \"%s\"\n",
                     port_file.c_str());
        return 1;
      }
      out << "admin=" << admin.port() << "\n";
      for (const std::string& id : link_ids) {
        out << id << "=" << proxy.port(id) << "\n";
      }
    }

    int sig = 0;
    while (sigwait(&mask, &sig) != 0) {
    }
    std::fprintf(stderr, "wfc_chaosnet: %s, stopping\n", strsignal(sig));
    admin.drain();
    proxy.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wfc_chaosnet: %s\n", e.what());
    return 1;
  }
}
