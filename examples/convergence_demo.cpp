// §5 end-to-end: approximating a chromatic subdivided simplex by the
// iterated standard chromatic subdivision (Theorem 5.1), and using the
// resulting map as a live protocol for chromatic simplex agreement
// (Corollary 5.2's constructive direction).
//
// Build & run: ./build/examples/convergence_demo
#include <cstdio>

#include "core/wfc.hpp"

int main() {
  using namespace wfc;

  std::printf("== Theorem 5.1: SDS^k approximates any chromatic "
              "subdivision ==\n\n");

  // Minimal approximation level k for a family of targets.
  std::printf("%-28s %10s %8s %12s\n", "target A", "facets", "min k",
              "star checks");
  for (int depth = 1; depth <= 2; ++depth) {
    for (int n_plus_1 = 2; n_plus_1 <= 3; ++n_plus_1) {
      topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
      topo::ChromaticComplex target = topo::iterated_sds(base, depth);
      conv::ApproximationOptions opts;
      opts.max_level = 4;
      conv::ApproximationResult r =
          conv::chromatic_approximation(target, base, opts);
      char name[64];
      std::snprintf(name, sizeof name, "SDS^%d(s^%d)", depth, n_plus_1 - 1);
      if (r.found) {
        std::printf("%-28s %10zu %8d %12llu\n", name, target.num_facets(),
                    r.level, static_cast<unsigned long long>(r.star_checks));
      } else {
        std::printf("%-28s %10zu %8s %12llu\n", name, target.num_facets(),
                    ">4", static_cast<unsigned long long>(r.star_checks));
      }
    }
  }

  // The non-chromatic Lemma 2.1 (Bsd^k -> A), shown for the edge & triangle.
  std::printf("\nLemma 2.1 (barycentric): Bsd^k(s^n) -> SDS(s^n)\n");
  for (int n_plus_1 = 2; n_plus_1 <= 3; ++n_plus_1) {
    topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
    topo::ChromaticComplex target =
        topo::standard_chromatic_subdivision(base);
    conv::ApproximationOptions opts;
    opts.max_level = 6;
    conv::ApproximationResult r =
        conv::barycentric_approximation(target, base, opts);
    std::printf("  n=%d: min k = %d\n", n_plus_1 - 1, r.level);
  }

  // Lemma 5.3's first step: the canonical SDS(C) -> Bsd(C) map.
  {
    topo::ChromaticComplex base = topo::base_simplex(3);
    topo::ChromaticComplex sds = topo::standard_chromatic_subdivision(base);
    topo::ChromaticComplex bsd = topo::barycentric_subdivision(base);
    auto image = conv::sds_to_bsd_map(sds, bsd);
    topo::SimplicialMap map(sds, bsd);
    for (topo::VertexId v = 0; v < sds.num_vertices(); ++v) {
      map.set(v, image[v]);
    }
    std::printf("\ncanonical SDS->Bsd map: simplicial=%s, "
                "carrier-preserving=%s\n",
                map.is_simplicial() ? "yes" : "NO",
                map.is_carrier_preserving_strict() ? "yes" : "NO");
  }

  // CSASS solved by convergence (no search): compile and run.
  std::printf("\n== CSASS via convergence map (Cor 5.2) ==\n");
  topo::ChromaticComplex target =
      topo::iterated_sds(topo::base_simplex(3), 1);
  task::SimplexAgreementTask agreement(3, target);
  task::SolveResult solved =
      conv::solve_simplex_agreement_by_convergence(agreement);
  std::printf("compiled at level b=%d without search\n", solved.level);
  task::DecisionProtocol protocol(agreement, std::move(solved));
  const std::size_t execs = protocol.validate_exhaustively({0, 1, 2});
  std::printf("all %zu full-participation executions decide a simplex of A "
              "inside the participants' carrier\n",
              execs);
  bool thread_ok = true;
  for (int i = 0; i < 5; ++i) {
    thread_ok = thread_ok && protocol.run_threads({0, 1, 2}).valid;
  }
  std::printf("real-thread runs valid: %s\n", thread_ok ? "yes" : "NO");
  return thread_ok ? 0 : 1;
}
