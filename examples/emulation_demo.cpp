// The paper's main result, §4 / Figure 2: running an atomic-snapshot
// protocol (Figure 1) on top of iterated immediate snapshot memories.
//
// This demo:
//   1. runs the k-shot full-information protocol through the emulator under
//      several adversaries and validates the resulting history against the
//      atomic-snapshot specification (Prop 4.1 / Cor 4.1);
//   2. shows the cost structure: memories consumed per emulated operation,
//      including the sequential-adversary case where the fastest emulator
//      races ahead and slower ones retry (the emulation is nonblocking, not
//      wait-free -- the paper's closing remark of §4);
//   3. repeats the run on real threads over register-based one-shot
//      immediate snapshot objects.
//
// Build & run: ./build/examples/emulation_demo
#include <cstdio>

#include "core/wfc.hpp"

namespace {

void report(const char* label, const wfc::emu::EmulationResult& res) {
  using namespace wfc;
  emu::HistoryReport rep = emu::check_history(res);
  int ops = 0;
  for (const auto& log : res.ops) ops += static_cast<int>(log.size());
  std::printf("  %-12s rounds=%3d  ops=%2d  steps/proc=[", label,
              res.rounds_used, ops);
  for (std::size_t p = 0; p < res.iis_steps.size(); ++p) {
    std::printf("%s%d", p ? " " : "", res.iis_steps[p]);
  }
  std::printf("]  history: %s%s%s\n", rep.ok() ? "VALID" : "INVALID ",
              rep.ok() ? "" : rep.violation.c_str(), "");
}

}  // namespace

int main() {
  using namespace wfc;
  constexpr int kProcs = 3;
  constexpr int kShots = 2;
  const int max_rounds = 64 + 16 * kProcs * kShots;

  std::printf("== Figure 2: k-shot atomic snapshot emulated in IIS ==\n");
  std::printf("   (n+1 = %d processors, k = %d write/scan rounds each)\n\n",
              kProcs, kShots);

  std::printf("Simulated IIS executions:\n");
  {
    emu::FullInfoClient client(kShots);
    rt::SynchronousAdversary adv;
    report("synchronous", emu::run_emulation_simulated(
                              kProcs, adv, max_rounds, client.init(),
                              client.on_scan()));
  }
  {
    emu::FullInfoClient client(kShots);
    rt::SequentialAdversary adv;
    report("sequential", emu::run_emulation_simulated(
                             kProcs, adv, max_rounds, client.init(),
                             client.on_scan()));
  }
  {
    emu::FullInfoClient client(kShots);
    rt::RotatingAdversary adv;
    report("rotating", emu::run_emulation_simulated(kProcs, adv, max_rounds,
                                                    client.init(),
                                                    client.on_scan()));
  }
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    emu::FullInfoClient client(kShots);
    rt::RandomAdversary adv(seed);
    char label[32];
    std::snprintf(label, sizeof label, "random#%llu",
                  static_cast<unsigned long long>(seed));
    report(label, emu::run_emulation_simulated(kProcs, adv, max_rounds,
                                               client.init(),
                                               client.on_scan()));
  }

  std::printf("\nThe sequential rows show the §4 caveat: the emulation is\n"
              "nonblocking, not wait-free -- the first processor completes\n"
              "an operation every memory while the last one retries, and\n"
              "only progresses freely once faster ones halt (Lemma 3.1\n"
              "boundedness is what makes the whole run finite).\n\n");

  std::printf("Real threads over register-based immediate snapshots:\n");
  bool all_valid = true;
  for (int trial = 0; trial < 5; ++trial) {
    emu::FullInfoClient client(kShots);
    emu::EmulationResult res = emu::run_emulation_threads(
        kProcs, max_rounds, client.init(), client.on_scan());
    emu::HistoryReport rep = emu::check_history(res);
    all_valid = all_valid && rep.ok();
    std::printf("  trial %d: rounds=%d history=%s\n", trial, res.rounds_used,
                rep.ok() ? "VALID" : rep.violation.c_str());
  }
  return all_valid ? 0 : 1;
}
