// wfc_serve -- JSON-lines query server over the wfc::svc subsystem.
//
// Reads one query object per stdin line, executes them concurrently on a
// worker pool with a shared SDS-chain cache, and prints one JSON result
// line per query (in input order) to stdout.  See service/frontend.hpp for
// the line protocol.
//
// Usage: wfc_serve [--workers N] [--max-level B] [--cache-entries N]
//                  [--cache-vertices N] [--quiet] [--v2] [--no-obs]
//
// --v2 emits the v2 result envelope ("status" = transport taxonomy, domain
// verdict in "verdict"); the default stays on the legacy envelope for one
// release.  --no-obs leaves the observability layer off (the metrics and
// trace ops then answer invalid_argument).
//
// Example (two input lines: a consensus query, then a stats request):
//   printf ... | wfc_serve --workers 4
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "service/frontend.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: wfc_serve [--workers N] [--max-level B]\n"
               "                 [--cache-entries N] [--cache-vertices N]\n"
               "                 [--quiet] [--v2] [--no-obs]\n"
               "Reads JSON-lines queries from stdin; see "
               "service/frontend.hpp for the protocol.\n"
               "  --v2      emit the v2 result envelope (verdict field)\n"
               "  --no-obs  disable tracing/metrics collection\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  wfc::svc::ServeConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) return false;
      out = std::atoi(argv[++i]);
      return out > 0;
    };
    int value = 0;
    if (arg == "--workers" && next_int(value)) {
      config.service.workers = value;
    } else if (arg == "--max-level" && next_int(value)) {
      config.default_max_level = value;
    } else if (arg == "--cache-entries" && next_int(value)) {
      config.service.cache.max_entries = static_cast<std::size_t>(value);
    } else if (arg == "--cache-vertices" && next_int(value)) {
      config.service.cache.max_resident_vertices =
          static_cast<std::size_t>(value);
    } else if (arg == "--quiet") {
      config.stats_at_eof = false;
    } else if (arg == "--v2") {
      config.legacy_envelope = false;
    } else if (arg == "--no-obs") {
      config.observability = false;
    } else {
      return usage();
    }
  }
  const int errors =
      wfc::svc::run_jsonl_server(std::cin, std::cout, std::cerr, config);
  return errors == 0 ? 0 : 1;
}
