// wfc_serve -- JSON-lines query server over the wfc::svc subsystem.
//
// Two transports share one protocol (service/handler.hpp):
//
//   * stdin/stdout (default): reads one query object per stdin line,
//     executes them concurrently on a worker pool with a shared SDS-chain
//     cache, and prints one JSON result line per query (in input order).
//   * TCP (--listen host:port): serves the same newline-framed protocol
//     over plaintext TCP via the wfc::net epoll server.  Responses echo the
//     client-supplied "id" and may complete out of order; pipeline freely.
//     SIGTERM / SIGINT drain gracefully: stop accepting, answer and flush
//     everything inflight, then exit.
//
// Usage: wfc_serve [--workers N] [--max-level B] [--cache-entries N]
//                  [--cache-vertices N] [--quiet] [--legacy] [--no-obs]
//                  [--listen host:port] [--port-file PATH] [--io-threads N]
//                  [--idle-timeout-ms N] [--max-line-bytes N] [--shard-id S]
//
// The v2 result envelope ("status" = transport taxonomy, domain verdict in
// "verdict") is the default since PR 5; --legacy restores the old envelope
// (verdict in "status") for one release and --v2 is accepted as a no-op.
// --no-obs leaves the observability layer off (the metrics and trace ops
// then answer invalid_argument).
//
// --listen ":0" binds an ephemeral port; --port-file writes the bound port
// as a decimal line once the server is accepting (CI's free-port flow).
//
// Example (stdin transport, two lines: a consensus query, then stats):
//   printf ... | wfc_serve --workers 4
// Example (TCP):
//   wfc_serve --listen 127.0.0.1:7411 &
//   wfc_loadgen --connect 127.0.0.1:7411 --corpus examples/queries.jsonl
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "net/server.hpp"
#include "service/frontend.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: wfc_serve [--workers N] [--max-level B]\n"
               "                 [--mem-cache-entries N] "
               "[--mem-cache-vertices N]\n"
               "                 [--store-dir PATH] [--store-readonly]\n"
               "                 [--store-max-bytes N]\n"
               "                 [--quiet] [--legacy] [--no-obs]\n"
               "                 [--listen host:port] [--port-file PATH]\n"
               "                 [--io-threads N] [--idle-timeout-ms N]\n"
               "                 [--max-line-bytes N] [--shard-id S]\n"
               "Speaks the JSON-lines protocol of service/handler.hpp on\n"
               "stdin/stdout, or over TCP with --listen.\n"
               "  --listen ADDR  serve plaintext TCP (\":0\" = ephemeral)\n"
               "  --port-file P  write the bound port to P once listening\n"
               "  --store-dir P  persistent content-addressed chain store;\n"
               "                 restarts (and co-located shards) start warm\n"
               "  --store-readonly     never publish to the store\n"
               "  --store-max-bytes N  on-disk budget (0 = unlimited)\n"
               "  --legacy       emit the legacy envelope (verdict in "
               "\"status\")\n"
               "  --no-obs       disable tracing/metrics collection\n"
               "  --shard-id S   identity echoed by {\"op\":\"info\"} "
               "(cluster shards)\n"
               "  --cache-entries/--cache-vertices are deprecated aliases of\n"
               "  the --mem-cache-* flags.\n");
  return 2;
}

/// TCP mode: serve until SIGTERM/SIGINT, then drain gracefully.  Signals
/// are blocked in every thread (the mask is inherited by the service and io
/// threads spawned below) and collected here with sigwait, so the drain
/// runs on the main thread with no async-signal-safety constraints.
int serve_tcp(const wfc::svc::ServeConfig& config,
              const std::string& listen_spec, const std::string& port_file,
              const std::string& shard_id, int io_threads,
              int idle_timeout_ms) {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    std::fprintf(stderr, "wfc_serve: pthread_sigmask failed\n");
    return 1;
  }

  wfc::svc::QueryService::Options service_options = config.service;
  if (config.observability) service_options.obs.enabled = true;
  wfc::svc::QueryService service(std::move(service_options));

  wfc::net::ServerConfig server_config;
  server_config.listen = wfc::net::parse_endpoint(listen_spec);
  if (io_threads > 0) server_config.io_threads = io_threads;
  if (idle_timeout_ms > 0) {
    server_config.idle_timeout = std::chrono::milliseconds(idle_timeout_ms);
  }
  server_config.handler.default_max_level = config.default_max_level;
  server_config.handler.legacy_envelope = config.legacy_envelope;
  server_config.handler.max_line_bytes = config.max_line_bytes;
  server_config.handler.server_id = shard_id;
  server_config.handler.warn = [](const std::string& note) {
    std::fprintf(stderr, "wfc_serve: %s\n", note.c_str());
  };

  wfc::net::Server server(service, server_config);
  server.start();
  std::fprintf(stderr, "wfc_serve: listening on %s port %u\n",
               server_config.listen.host.c_str(), server.port());
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      std::fprintf(stderr, "wfc_serve: cannot write port file \"%s\"\n",
                   port_file.c_str());
      return 1;
    }
    out << server.port() << "\n";
  }

  int sig = 0;
  while (sigwait(&mask, &sig) != 0) {
  }
  std::fprintf(stderr, "wfc_serve: %s, draining\n", strsignal(sig));
  server.drain();
  const wfc::net::Server::Stats wire = server.stats();
  if (config.stats_at_eof) {
    std::fprintf(stderr,
                 "wfc_serve: wire accepted=%llu closed=%llu dropped=%llu "
                 "requests=%llu responses=%llu\n",
                 static_cast<unsigned long long>(wire.accepted),
                 static_cast<unsigned long long>(wire.closed),
                 static_cast<unsigned long long>(wire.dropped),
                 static_cast<unsigned long long>(wire.requests),
                 static_cast<unsigned long long>(wire.responses));
    std::fprintf(stderr, "wfc_serve: %s\n",
                 service.stats().to_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  wfc::svc::ServeConfig config;
  std::string listen_spec;
  std::string port_file;
  std::string shard_id;
  int io_threads = 0;
  int idle_timeout_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) return false;
      out = std::atoi(argv[++i]);
      return out > 0;
    };
    auto next_str = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return !out.empty();
    };
    // One-shot note for the pre-PR-9 cache knob spellings (PR-4 pattern):
    // keep them working for one release, say the new name once.
    static bool warned_cache_flags = false;
    auto deprecated_cache_flag = [&](const char* old_name,
                                     const char* new_name) {
      if (warned_cache_flags) return;
      warned_cache_flags = true;
      std::fprintf(stderr, "wfc_serve: deprecated: %s; use %s\n", old_name,
                   new_name);
    };
    int value = 0;
    if (arg == "--workers" && next_int(value)) {
      config.service.workers = value;
    } else if (arg == "--max-level" && next_int(value)) {
      config.default_max_level = value;
    } else if ((arg == "--mem-cache-entries" || arg == "--cache-entries") &&
               next_int(value)) {
      if (arg == "--cache-entries") {
        deprecated_cache_flag("--cache-entries", "--mem-cache-entries");
      }
      config.service.cache.max_entries = static_cast<std::size_t>(value);
    } else if ((arg == "--mem-cache-vertices" || arg == "--cache-vertices") &&
               next_int(value)) {
      if (arg == "--cache-vertices") {
        deprecated_cache_flag("--cache-vertices", "--mem-cache-vertices");
      }
      config.service.cache.max_resident_vertices =
          static_cast<std::size_t>(value);
    } else if (arg == "--store-dir" &&
               next_str(config.service.cache.store.dir)) {
    } else if (arg == "--store-readonly") {
      config.service.cache.store.readonly = true;
    } else if (arg == "--store-max-bytes") {
      if (i + 1 >= argc) return usage();
      config.service.cache.store.max_bytes =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-line-bytes" && next_int(value)) {
      config.max_line_bytes = static_cast<std::size_t>(value);
    } else if (arg == "--quiet") {
      config.stats_at_eof = false;
    } else if (arg == "--legacy") {
      config.legacy_envelope = true;
    } else if (arg == "--v2") {
      // The v2 envelope became the default in PR 5; kept as a no-op so
      // existing pipelines keep working.
      config.legacy_envelope = false;
    } else if (arg == "--no-obs") {
      config.observability = false;
    } else if (arg == "--listen" && next_str(listen_spec)) {
    } else if (arg == "--port-file" && next_str(port_file)) {
    } else if (arg == "--shard-id" && next_str(shard_id)) {
    } else if (arg == "--io-threads" && next_int(io_threads)) {
    } else if (arg == "--idle-timeout-ms" && next_int(idle_timeout_ms)) {
    } else {
      return usage();
    }
  }
  if (!listen_spec.empty()) {
    try {
      return serve_tcp(config, listen_spec, port_file, shard_id, io_threads,
                       idle_timeout_ms);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wfc_serve: %s\n", e.what());
      return 1;
    }
  }
  const int errors =
      wfc::svc::run_jsonl_server(std::cin, std::cout, std::cerr, config);
  return errors == 0 ? 0 : 1;
}
