// The resilience frontier, machine-derived (E18): for colorless tasks, the
// BG reduction turns the wait-free characterization into a t-resilient
// decision procedure.  This demo prints the classical table
//
//     k-set consensus among n processors tolerating t failures
//     is solvable  iff  k >= t + 1
//
// with every cell decided by the Prop 3.1 checker on the (t+1)-processor
// projection -- plus FLP (consensus, one failure) called out explicitly.
//
// Build & run: ./build/examples/resilience_demo
#include <cstdio>

#include "core/wfc.hpp"

int main() {
  using namespace wfc;

  std::printf("== t-resilient solvability via the BG reduction ==\n\n");

  std::printf("FLP, derived: consensus among n processors, one failure\n");
  for (int n : {2, 3, 4}) {
    task::ResilienceVerdict v =
        task::decide_t_resilient(task::colorless_consensus(2), n, 1, 3);
    std::printf("  n=%d: %s\n", n,
                v.status == task::Solvability::kUnsolvable ? "UNSOLVABLE"
                                                           : "??");
  }

  // Projections stay at <= 3 processors so every cell is decided by search
  // in milliseconds; the deeper UNSAT instances (t+1 >= 4, k = t) are the
  // Sperner-hard cases that E8 settles for all levels.
  const int procs = 3;
  std::printf("\nk-set consensus among %d processors (rows k, columns t):\n",
              procs);
  std::printf("      ");
  for (int t = 0; t <= 2; ++t) std::printf("  t=%d ", t);
  std::printf("\n");
  bool frontier_ok = true;
  for (int k = 1; k <= 3; ++k) {
    std::printf("  k=%d ", k);
    for (int t = 0; t <= 2; ++t) {
      task::ResilienceVerdict v = task::decide_t_resilient(
          task::colorless_set_consensus(k, procs), procs, t, 1);
      const bool solvable = v.status == task::Solvability::kSolvable;
      const bool expected = k >= t + 1;
      frontier_ok = frontier_ok && (solvable == expected);
      std::printf("  %s ", solvable ? "yes" : " no");
    }
    std::printf("\n");
  }
  std::printf("\nfrontier matches 'solvable iff k >= t+1': %s\n",
              frontier_ok ? "yes" : "NO");
  return frontier_ok ? 0 : 1;
}
