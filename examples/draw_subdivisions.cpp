// Renders the complexes this library computes as SVG files -- the pictures
// the literature draws by hand:
//
//   sds1.svg      SDS(s^2), the standard chromatic subdivision (13 facets)
//   sds2.svg      SDS^2(s^2) (169 facets)
//   bsd2.svg      Bsd^2(s^2), the barycentric comparison
//   sperner.svg   a random Sperner labeling of SDS^2(s^2), vertices colored
//                 by LABEL (not by processor) -- by Sperner's lemma an odd
//                 number of facets must show all three label colors
//
// Usage: draw_subdivisions [output_dir]
#include <cstdio>
#include <fstream>
#include <string>

#include "core/wfc.hpp"

namespace {

void save(const std::string& path, const std::string& svg) {
  std::ofstream out(path);
  out << svg;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), svg.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfc;
  const std::string dir = argc > 1 ? argv[1] : ".";

  topo::ChromaticComplex base = topo::base_simplex(3);

  topo::SvgOptions opts;
  opts.vertex_radius = 5.0;
  save(dir + "/sds1.svg",
       topo::render_svg(topo::standard_chromatic_subdivision(base), opts));

  topo::ChromaticComplex sds2 = topo::iterated_sds(base, 2);
  topo::SvgOptions fine;
  fine.vertex_radius = 3.0;
  save(dir + "/sds2.svg", topo::render_svg(sds2, fine));

  save(dir + "/bsd2.svg", topo::render_svg(topo::iterated_bsd(base, 2), fine));

  // Sperner labeling: recolor vertices by their label.
  Rng rng(2026);
  topo::Labeling lab = topo::random_sperner_labeling(sds2, rng);
  const char* label_color[] = {"#d62728", "#1f77b4", "#2ca02c"};
  topo::SvgOptions sperner;
  sperner.vertex_radius = 3.5;
  sperner.vertex_fill.resize(sds2.num_vertices());
  for (topo::VertexId v = 0; v < sds2.num_vertices(); ++v) {
    sperner.vertex_fill[v] = label_color[lab[v] % 3];
  }
  save(dir + "/sperner.svg", topo::render_svg(sds2, sperner));
  std::printf("panchromatic facets in sperner.svg: %llu (odd, per Sperner)\n",
              static_cast<unsigned long long>(
                  topo::count_panchromatic(sds2, lab)));
  return 0;
}
