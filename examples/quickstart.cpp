// Quickstart: the paper's characterization in five minutes.
//
//   1. Build the standard chromatic subdivision SDS(s^2) -- the one-shot
//      immediate-snapshot protocol complex (Lemma 3.2).
//   2. Machine-check that real executions produce exactly that complex.
//   3. Ask the characterization whether two tasks are wait-free solvable:
//      binary consensus (NO -- FLP) and chromatic simplex agreement (YES),
//      and actually run the synthesized protocol for the solvable one.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/wfc.hpp"

int main() {
  using namespace wfc;

  std::printf("== %s ==\n\n", version());

  // 1. The standard chromatic subdivision of the triangle (3 processors).
  topo::ChromaticComplex base = topo::base_simplex(3);
  topo::ChromaticComplex sds = topo::standard_chromatic_subdivision(base);
  std::printf("SDS(s^2): %zu vertices, %zu facets (= ordered partitions of "
              "{0,1,2} = %llu)\n",
              sds.num_vertices(), sds.num_facets(),
              static_cast<unsigned long long>(topo::fubini(3)));

  // The geometry checks out: it really is a subdivision.
  topo::SubdivisionReport geom = topo::check_subdivision(sds, base);
  std::printf("geometric subdivision: %s (volume ratio %.9f)\n",
              geom.ok() ? "valid" : "INVALID", geom.volume_ratio);

  // 2. Lemma 3.2/3.3: enumerate actual IIS executions and compare.
  proto::IsomorphismReport iso = proto::verify_iis_complex_is_sds(base, 2);
  std::printf("2-round IIS protocol complex == SDS^2(s^2): %s "
              "(%zu vertices, %zu facets)\n\n",
              iso.ok() ? "yes" : "NO", iso.sds_vertices, iso.sds_facets);

  // 3a. Binary consensus for two processors: impossible (searched levels
  // 0..2 exhaustively -- each "no" is a machine-checked refutation).
  task::ConsensusTask consensus(2, 2);
  CharacterizationReport c = characterize(consensus);
  std::printf("%s\n", c.summary(consensus.name()).c_str());

  // 3b. Chromatic simplex agreement on SDS(s^2): solvable at level 1.
  task::SimplexAgreementTask agreement(3, sds);
  CharacterizationReport a = characterize(agreement);
  std::printf("%s\n\n", a.summary(agreement.name()).c_str());

  // Run the synthesized protocol once under a random adversary and once on
  // real threads.
  task::SolveResult solved = task::solve(agreement, 1);
  task::DecisionProtocol protocol(agreement, std::move(solved));
  rt::RandomAdversary adversary(2026);
  task::RunOutcome sim = protocol.run_simulated({0, 1, 2}, adversary);
  std::printf("simulated run decided {");
  for (topo::VertexId v : sim.decisions) std::printf(" %u", v);
  std::printf(" } -- %s\n", sim.valid ? "valid" : "INVALID");

  task::RunOutcome thr = protocol.run_threads({0, 1, 2});
  std::printf("real-thread run decided {");
  for (topo::VertexId v : thr.decisions) std::printf(" %u", v);
  std::printf(" } -- %s\n", thr.valid ? "valid" : "INVALID");

  return (geom.ok() && iso.ok() && sim.valid && thr.valid) ? 0 : 1;
}
