# Empty dependencies file for bg_simulation_demo.
# This may be replaced when dependencies are built.
