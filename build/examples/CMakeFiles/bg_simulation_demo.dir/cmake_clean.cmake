file(REMOVE_RECURSE
  "CMakeFiles/bg_simulation_demo.dir/bg_simulation_demo.cpp.o"
  "CMakeFiles/bg_simulation_demo.dir/bg_simulation_demo.cpp.o.d"
  "bg_simulation_demo"
  "bg_simulation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg_simulation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
