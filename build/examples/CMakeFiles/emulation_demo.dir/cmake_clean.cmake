file(REMOVE_RECURSE
  "CMakeFiles/emulation_demo.dir/emulation_demo.cpp.o"
  "CMakeFiles/emulation_demo.dir/emulation_demo.cpp.o.d"
  "emulation_demo"
  "emulation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
