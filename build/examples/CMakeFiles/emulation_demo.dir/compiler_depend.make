# Empty compiler generated dependencies file for emulation_demo.
# This may be replaced when dependencies are built.
