# Empty dependencies file for draw_subdivisions.
# This may be replaced when dependencies are built.
