file(REMOVE_RECURSE
  "CMakeFiles/draw_subdivisions.dir/draw_subdivisions.cpp.o"
  "CMakeFiles/draw_subdivisions.dir/draw_subdivisions.cpp.o.d"
  "draw_subdivisions"
  "draw_subdivisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draw_subdivisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
