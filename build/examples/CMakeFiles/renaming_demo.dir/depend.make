# Empty dependencies file for renaming_demo.
# This may be replaced when dependencies are built.
