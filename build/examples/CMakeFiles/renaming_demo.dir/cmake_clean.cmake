file(REMOVE_RECURSE
  "CMakeFiles/renaming_demo.dir/renaming_demo.cpp.o"
  "CMakeFiles/renaming_demo.dir/renaming_demo.cpp.o.d"
  "renaming_demo"
  "renaming_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renaming_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
