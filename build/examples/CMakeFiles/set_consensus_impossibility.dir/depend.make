# Empty dependencies file for set_consensus_impossibility.
# This may be replaced when dependencies are built.
