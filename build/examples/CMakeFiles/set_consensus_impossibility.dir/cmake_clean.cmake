file(REMOVE_RECURSE
  "CMakeFiles/set_consensus_impossibility.dir/set_consensus_impossibility.cpp.o"
  "CMakeFiles/set_consensus_impossibility.dir/set_consensus_impossibility.cpp.o.d"
  "set_consensus_impossibility"
  "set_consensus_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_consensus_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
