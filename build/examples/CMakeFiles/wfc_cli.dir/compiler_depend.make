# Empty compiler generated dependencies file for wfc_cli.
# This may be replaced when dependencies are built.
