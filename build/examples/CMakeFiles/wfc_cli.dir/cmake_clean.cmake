file(REMOVE_RECURSE
  "CMakeFiles/wfc_cli.dir/wfc_cli.cpp.o"
  "CMakeFiles/wfc_cli.dir/wfc_cli.cpp.o.d"
  "wfc_cli"
  "wfc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
