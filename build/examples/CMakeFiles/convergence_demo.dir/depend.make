# Empty dependencies file for convergence_demo.
# This may be replaced when dependencies are built.
