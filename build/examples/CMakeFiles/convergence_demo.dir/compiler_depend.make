# Empty compiler generated dependencies file for convergence_demo.
# This may be replaced when dependencies are built.
