file(REMOVE_RECURSE
  "CMakeFiles/convergence_demo.dir/convergence_demo.cpp.o"
  "CMakeFiles/convergence_demo.dir/convergence_demo.cpp.o.d"
  "convergence_demo"
  "convergence_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
