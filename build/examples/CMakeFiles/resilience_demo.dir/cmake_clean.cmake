file(REMOVE_RECURSE
  "CMakeFiles/resilience_demo.dir/resilience_demo.cpp.o"
  "CMakeFiles/resilience_demo.dir/resilience_demo.cpp.o.d"
  "resilience_demo"
  "resilience_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
