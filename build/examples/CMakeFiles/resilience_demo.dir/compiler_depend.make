# Empty compiler generated dependencies file for resilience_demo.
# This may be replaced when dependencies are built.
