file(REMOVE_RECURSE
  "libwfc_topology.a"
)
