# Empty dependencies file for wfc_topology.
# This may be replaced when dependencies are built.
