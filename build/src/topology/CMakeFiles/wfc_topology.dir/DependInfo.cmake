
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/complex.cpp" "src/topology/CMakeFiles/wfc_topology.dir/complex.cpp.o" "gcc" "src/topology/CMakeFiles/wfc_topology.dir/complex.cpp.o.d"
  "/root/repo/src/topology/geometry.cpp" "src/topology/CMakeFiles/wfc_topology.dir/geometry.cpp.o" "gcc" "src/topology/CMakeFiles/wfc_topology.dir/geometry.cpp.o.d"
  "/root/repo/src/topology/io.cpp" "src/topology/CMakeFiles/wfc_topology.dir/io.cpp.o" "gcc" "src/topology/CMakeFiles/wfc_topology.dir/io.cpp.o.d"
  "/root/repo/src/topology/ordered_partition.cpp" "src/topology/CMakeFiles/wfc_topology.dir/ordered_partition.cpp.o" "gcc" "src/topology/CMakeFiles/wfc_topology.dir/ordered_partition.cpp.o.d"
  "/root/repo/src/topology/simplicial_map.cpp" "src/topology/CMakeFiles/wfc_topology.dir/simplicial_map.cpp.o" "gcc" "src/topology/CMakeFiles/wfc_topology.dir/simplicial_map.cpp.o.d"
  "/root/repo/src/topology/sperner.cpp" "src/topology/CMakeFiles/wfc_topology.dir/sperner.cpp.o" "gcc" "src/topology/CMakeFiles/wfc_topology.dir/sperner.cpp.o.d"
  "/root/repo/src/topology/structure.cpp" "src/topology/CMakeFiles/wfc_topology.dir/structure.cpp.o" "gcc" "src/topology/CMakeFiles/wfc_topology.dir/structure.cpp.o.d"
  "/root/repo/src/topology/subdivision.cpp" "src/topology/CMakeFiles/wfc_topology.dir/subdivision.cpp.o" "gcc" "src/topology/CMakeFiles/wfc_topology.dir/subdivision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wfc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
