file(REMOVE_RECURSE
  "CMakeFiles/wfc_topology.dir/complex.cpp.o"
  "CMakeFiles/wfc_topology.dir/complex.cpp.o.d"
  "CMakeFiles/wfc_topology.dir/geometry.cpp.o"
  "CMakeFiles/wfc_topology.dir/geometry.cpp.o.d"
  "CMakeFiles/wfc_topology.dir/io.cpp.o"
  "CMakeFiles/wfc_topology.dir/io.cpp.o.d"
  "CMakeFiles/wfc_topology.dir/ordered_partition.cpp.o"
  "CMakeFiles/wfc_topology.dir/ordered_partition.cpp.o.d"
  "CMakeFiles/wfc_topology.dir/simplicial_map.cpp.o"
  "CMakeFiles/wfc_topology.dir/simplicial_map.cpp.o.d"
  "CMakeFiles/wfc_topology.dir/sperner.cpp.o"
  "CMakeFiles/wfc_topology.dir/sperner.cpp.o.d"
  "CMakeFiles/wfc_topology.dir/structure.cpp.o"
  "CMakeFiles/wfc_topology.dir/structure.cpp.o.d"
  "CMakeFiles/wfc_topology.dir/subdivision.cpp.o"
  "CMakeFiles/wfc_topology.dir/subdivision.cpp.o.d"
  "libwfc_topology.a"
  "libwfc_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
