
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emulation/emulator.cpp" "src/emulation/CMakeFiles/wfc_emulation.dir/emulator.cpp.o" "gcc" "src/emulation/CMakeFiles/wfc_emulation.dir/emulator.cpp.o.d"
  "/root/repo/src/emulation/figure1.cpp" "src/emulation/CMakeFiles/wfc_emulation.dir/figure1.cpp.o" "gcc" "src/emulation/CMakeFiles/wfc_emulation.dir/figure1.cpp.o.d"
  "/root/repo/src/emulation/history.cpp" "src/emulation/CMakeFiles/wfc_emulation.dir/history.cpp.o" "gcc" "src/emulation/CMakeFiles/wfc_emulation.dir/history.cpp.o.d"
  "/root/repo/src/emulation/iis_in_snapshot.cpp" "src/emulation/CMakeFiles/wfc_emulation.dir/iis_in_snapshot.cpp.o" "gcc" "src/emulation/CMakeFiles/wfc_emulation.dir/iis_in_snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/wfc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wfc_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
