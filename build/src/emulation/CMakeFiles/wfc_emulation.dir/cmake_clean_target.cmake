file(REMOVE_RECURSE
  "libwfc_emulation.a"
)
