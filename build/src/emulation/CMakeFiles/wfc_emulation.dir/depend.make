# Empty dependencies file for wfc_emulation.
# This may be replaced when dependencies are built.
