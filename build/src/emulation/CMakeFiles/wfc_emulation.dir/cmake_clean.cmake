file(REMOVE_RECURSE
  "CMakeFiles/wfc_emulation.dir/emulator.cpp.o"
  "CMakeFiles/wfc_emulation.dir/emulator.cpp.o.d"
  "CMakeFiles/wfc_emulation.dir/figure1.cpp.o"
  "CMakeFiles/wfc_emulation.dir/figure1.cpp.o.d"
  "CMakeFiles/wfc_emulation.dir/history.cpp.o"
  "CMakeFiles/wfc_emulation.dir/history.cpp.o.d"
  "CMakeFiles/wfc_emulation.dir/iis_in_snapshot.cpp.o"
  "CMakeFiles/wfc_emulation.dir/iis_in_snapshot.cpp.o.d"
  "libwfc_emulation.a"
  "libwfc_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
