# Empty compiler generated dependencies file for wfc_runtime.
# This may be replaced when dependencies are built.
