file(REMOVE_RECURSE
  "CMakeFiles/wfc_runtime.dir/adversary.cpp.o"
  "CMakeFiles/wfc_runtime.dir/adversary.cpp.o.d"
  "CMakeFiles/wfc_runtime.dir/sim_is.cpp.o"
  "CMakeFiles/wfc_runtime.dir/sim_is.cpp.o.d"
  "CMakeFiles/wfc_runtime.dir/sim_snapshot.cpp.o"
  "CMakeFiles/wfc_runtime.dir/sim_snapshot.cpp.o.d"
  "libwfc_runtime.a"
  "libwfc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
