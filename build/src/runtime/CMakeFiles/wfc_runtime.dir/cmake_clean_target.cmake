file(REMOVE_RECURSE
  "libwfc_runtime.a"
)
