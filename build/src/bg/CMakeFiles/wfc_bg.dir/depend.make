# Empty dependencies file for wfc_bg.
# This may be replaced when dependencies are built.
