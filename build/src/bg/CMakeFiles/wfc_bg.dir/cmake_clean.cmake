file(REMOVE_RECURSE
  "CMakeFiles/wfc_bg.dir/simulation.cpp.o"
  "CMakeFiles/wfc_bg.dir/simulation.cpp.o.d"
  "libwfc_bg.a"
  "libwfc_bg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_bg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
