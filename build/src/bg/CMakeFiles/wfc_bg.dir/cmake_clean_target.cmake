file(REMOVE_RECURSE
  "libwfc_bg.a"
)
