# Empty compiler generated dependencies file for wfc_tasks.
# This may be replaced when dependencies are built.
