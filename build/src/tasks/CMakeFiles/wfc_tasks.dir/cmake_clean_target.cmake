file(REMOVE_RECURSE
  "libwfc_tasks.a"
)
