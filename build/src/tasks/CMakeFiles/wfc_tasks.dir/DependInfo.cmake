
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasks/canonical.cpp" "src/tasks/CMakeFiles/wfc_tasks.dir/canonical.cpp.o" "gcc" "src/tasks/CMakeFiles/wfc_tasks.dir/canonical.cpp.o.d"
  "/root/repo/src/tasks/decision_protocol.cpp" "src/tasks/CMakeFiles/wfc_tasks.dir/decision_protocol.cpp.o" "gcc" "src/tasks/CMakeFiles/wfc_tasks.dir/decision_protocol.cpp.o.d"
  "/root/repo/src/tasks/extraction.cpp" "src/tasks/CMakeFiles/wfc_tasks.dir/extraction.cpp.o" "gcc" "src/tasks/CMakeFiles/wfc_tasks.dir/extraction.cpp.o.d"
  "/root/repo/src/tasks/map_io.cpp" "src/tasks/CMakeFiles/wfc_tasks.dir/map_io.cpp.o" "gcc" "src/tasks/CMakeFiles/wfc_tasks.dir/map_io.cpp.o.d"
  "/root/repo/src/tasks/renaming_protocol.cpp" "src/tasks/CMakeFiles/wfc_tasks.dir/renaming_protocol.cpp.o" "gcc" "src/tasks/CMakeFiles/wfc_tasks.dir/renaming_protocol.cpp.o.d"
  "/root/repo/src/tasks/resilience.cpp" "src/tasks/CMakeFiles/wfc_tasks.dir/resilience.cpp.o" "gcc" "src/tasks/CMakeFiles/wfc_tasks.dir/resilience.cpp.o.d"
  "/root/repo/src/tasks/solvability.cpp" "src/tasks/CMakeFiles/wfc_tasks.dir/solvability.cpp.o" "gcc" "src/tasks/CMakeFiles/wfc_tasks.dir/solvability.cpp.o.d"
  "/root/repo/src/tasks/two_proc.cpp" "src/tasks/CMakeFiles/wfc_tasks.dir/two_proc.cpp.o" "gcc" "src/tasks/CMakeFiles/wfc_tasks.dir/two_proc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocol/CMakeFiles/wfc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/wfc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wfc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
