file(REMOVE_RECURSE
  "CMakeFiles/wfc_tasks.dir/canonical.cpp.o"
  "CMakeFiles/wfc_tasks.dir/canonical.cpp.o.d"
  "CMakeFiles/wfc_tasks.dir/decision_protocol.cpp.o"
  "CMakeFiles/wfc_tasks.dir/decision_protocol.cpp.o.d"
  "CMakeFiles/wfc_tasks.dir/extraction.cpp.o"
  "CMakeFiles/wfc_tasks.dir/extraction.cpp.o.d"
  "CMakeFiles/wfc_tasks.dir/map_io.cpp.o"
  "CMakeFiles/wfc_tasks.dir/map_io.cpp.o.d"
  "CMakeFiles/wfc_tasks.dir/renaming_protocol.cpp.o"
  "CMakeFiles/wfc_tasks.dir/renaming_protocol.cpp.o.d"
  "CMakeFiles/wfc_tasks.dir/resilience.cpp.o"
  "CMakeFiles/wfc_tasks.dir/resilience.cpp.o.d"
  "CMakeFiles/wfc_tasks.dir/solvability.cpp.o"
  "CMakeFiles/wfc_tasks.dir/solvability.cpp.o.d"
  "CMakeFiles/wfc_tasks.dir/two_proc.cpp.o"
  "CMakeFiles/wfc_tasks.dir/two_proc.cpp.o.d"
  "libwfc_tasks.a"
  "libwfc_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
