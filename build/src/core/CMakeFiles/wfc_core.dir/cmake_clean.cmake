file(REMOVE_RECURSE
  "CMakeFiles/wfc_core.dir/characterization.cpp.o"
  "CMakeFiles/wfc_core.dir/characterization.cpp.o.d"
  "libwfc_core.a"
  "libwfc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
