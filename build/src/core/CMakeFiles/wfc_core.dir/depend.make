# Empty dependencies file for wfc_core.
# This may be replaced when dependencies are built.
