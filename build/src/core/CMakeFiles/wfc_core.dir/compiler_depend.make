# Empty compiler generated dependencies file for wfc_core.
# This may be replaced when dependencies are built.
