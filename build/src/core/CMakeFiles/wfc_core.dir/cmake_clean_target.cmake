file(REMOVE_RECURSE
  "libwfc_core.a"
)
