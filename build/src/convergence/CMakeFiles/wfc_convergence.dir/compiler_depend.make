# Empty compiler generated dependencies file for wfc_convergence.
# This may be replaced when dependencies are built.
