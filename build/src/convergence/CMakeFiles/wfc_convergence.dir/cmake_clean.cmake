file(REMOVE_RECURSE
  "CMakeFiles/wfc_convergence.dir/approximation.cpp.o"
  "CMakeFiles/wfc_convergence.dir/approximation.cpp.o.d"
  "CMakeFiles/wfc_convergence.dir/convergence.cpp.o"
  "CMakeFiles/wfc_convergence.dir/convergence.cpp.o.d"
  "libwfc_convergence.a"
  "libwfc_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
