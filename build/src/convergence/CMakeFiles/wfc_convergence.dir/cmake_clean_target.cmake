file(REMOVE_RECURSE
  "libwfc_convergence.a"
)
