
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/convergence/approximation.cpp" "src/convergence/CMakeFiles/wfc_convergence.dir/approximation.cpp.o" "gcc" "src/convergence/CMakeFiles/wfc_convergence.dir/approximation.cpp.o.d"
  "/root/repo/src/convergence/convergence.cpp" "src/convergence/CMakeFiles/wfc_convergence.dir/convergence.cpp.o" "gcc" "src/convergence/CMakeFiles/wfc_convergence.dir/convergence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasks/CMakeFiles/wfc_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wfc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/wfc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/wfc_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
