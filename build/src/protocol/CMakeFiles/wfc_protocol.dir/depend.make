# Empty dependencies file for wfc_protocol.
# This may be replaced when dependencies are built.
