file(REMOVE_RECURSE
  "CMakeFiles/wfc_protocol.dir/protocol_complex.cpp.o"
  "CMakeFiles/wfc_protocol.dir/protocol_complex.cpp.o.d"
  "CMakeFiles/wfc_protocol.dir/sds_chain.cpp.o"
  "CMakeFiles/wfc_protocol.dir/sds_chain.cpp.o.d"
  "libwfc_protocol.a"
  "libwfc_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
