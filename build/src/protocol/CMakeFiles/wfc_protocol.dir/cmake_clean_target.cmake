file(REMOVE_RECURSE
  "libwfc_protocol.a"
)
