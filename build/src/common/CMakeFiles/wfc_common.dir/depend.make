# Empty dependencies file for wfc_common.
# This may be replaced when dependencies are built.
