file(REMOVE_RECURSE
  "CMakeFiles/wfc_common.dir/linalg.cpp.o"
  "CMakeFiles/wfc_common.dir/linalg.cpp.o.d"
  "libwfc_common.a"
  "libwfc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
