file(REMOVE_RECURSE
  "libwfc_common.a"
)
