# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/registers_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/emulation_test[1]_include.cmake")
include("/root/repo/build/tests/convergence_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/two_proc_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/bg_test[1]_include.cmake")
include("/root/repo/build/tests/extraction_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/map_io_test[1]_include.cmake")
