file(REMOVE_RECURSE
  "CMakeFiles/convergence_test.dir/convergence_test.cpp.o"
  "CMakeFiles/convergence_test.dir/convergence_test.cpp.o.d"
  "convergence_test"
  "convergence_test.pdb"
  "convergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
