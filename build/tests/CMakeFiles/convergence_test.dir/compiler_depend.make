# Empty compiler generated dependencies file for convergence_test.
# This may be replaced when dependencies are built.
