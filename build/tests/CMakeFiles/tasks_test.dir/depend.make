# Empty dependencies file for tasks_test.
# This may be replaced when dependencies are built.
