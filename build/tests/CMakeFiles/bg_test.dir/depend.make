# Empty dependencies file for bg_test.
# This may be replaced when dependencies are built.
