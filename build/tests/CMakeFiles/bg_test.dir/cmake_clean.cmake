file(REMOVE_RECURSE
  "CMakeFiles/bg_test.dir/bg_test.cpp.o"
  "CMakeFiles/bg_test.dir/bg_test.cpp.o.d"
  "bg_test"
  "bg_test.pdb"
  "bg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
