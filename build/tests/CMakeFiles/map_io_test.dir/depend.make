# Empty dependencies file for map_io_test.
# This may be replaced when dependencies are built.
