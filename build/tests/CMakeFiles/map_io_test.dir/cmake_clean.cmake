file(REMOVE_RECURSE
  "CMakeFiles/map_io_test.dir/map_io_test.cpp.o"
  "CMakeFiles/map_io_test.dir/map_io_test.cpp.o.d"
  "map_io_test"
  "map_io_test.pdb"
  "map_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
