file(REMOVE_RECURSE
  "CMakeFiles/emulation_test.dir/emulation_test.cpp.o"
  "CMakeFiles/emulation_test.dir/emulation_test.cpp.o.d"
  "emulation_test"
  "emulation_test.pdb"
  "emulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
