# Empty compiler generated dependencies file for emulation_test.
# This may be replaced when dependencies are built.
