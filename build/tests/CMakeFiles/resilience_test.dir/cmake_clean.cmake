file(REMOVE_RECURSE
  "CMakeFiles/resilience_test.dir/resilience_test.cpp.o"
  "CMakeFiles/resilience_test.dir/resilience_test.cpp.o.d"
  "resilience_test"
  "resilience_test.pdb"
  "resilience_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
