# Empty compiler generated dependencies file for two_proc_test.
# This may be replaced when dependencies are built.
