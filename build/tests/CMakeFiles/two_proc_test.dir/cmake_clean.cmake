file(REMOVE_RECURSE
  "CMakeFiles/two_proc_test.dir/two_proc_test.cpp.o"
  "CMakeFiles/two_proc_test.dir/two_proc_test.cpp.o.d"
  "two_proc_test"
  "two_proc_test.pdb"
  "two_proc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_proc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
