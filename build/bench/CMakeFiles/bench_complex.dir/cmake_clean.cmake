file(REMOVE_RECURSE
  "CMakeFiles/bench_complex.dir/bench_complex.cpp.o"
  "CMakeFiles/bench_complex.dir/bench_complex.cpp.o.d"
  "bench_complex"
  "bench_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
