# Empty compiler generated dependencies file for bench_complex.
# This may be replaced when dependencies are built.
