# Empty compiler generated dependencies file for bench_sperner.
# This may be replaced when dependencies are built.
