file(REMOVE_RECURSE
  "CMakeFiles/bench_sperner.dir/bench_sperner.cpp.o"
  "CMakeFiles/bench_sperner.dir/bench_sperner.cpp.o.d"
  "bench_sperner"
  "bench_sperner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sperner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
