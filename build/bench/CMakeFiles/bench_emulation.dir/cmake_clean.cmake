file(REMOVE_RECURSE
  "CMakeFiles/bench_emulation.dir/bench_emulation.cpp.o"
  "CMakeFiles/bench_emulation.dir/bench_emulation.cpp.o.d"
  "bench_emulation"
  "bench_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
