# Empty dependencies file for bench_emulation.
# This may be replaced when dependencies are built.
