file(REMOVE_RECURSE
  "CMakeFiles/bench_registers.dir/bench_registers.cpp.o"
  "CMakeFiles/bench_registers.dir/bench_registers.cpp.o.d"
  "bench_registers"
  "bench_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
