# Empty compiler generated dependencies file for bench_registers.
# This may be replaced when dependencies are built.
