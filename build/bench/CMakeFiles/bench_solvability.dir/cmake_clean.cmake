file(REMOVE_RECURSE
  "CMakeFiles/bench_solvability.dir/bench_solvability.cpp.o"
  "CMakeFiles/bench_solvability.dir/bench_solvability.cpp.o.d"
  "bench_solvability"
  "bench_solvability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solvability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
