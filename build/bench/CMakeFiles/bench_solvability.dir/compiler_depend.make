# Empty compiler generated dependencies file for bench_solvability.
# This may be replaced when dependencies are built.
