# Empty dependencies file for bench_bg.
# This may be replaced when dependencies are built.
