file(REMOVE_RECURSE
  "CMakeFiles/bench_bg.dir/bench_bg.cpp.o"
  "CMakeFiles/bench_bg.dir/bench_bg.cpp.o.d"
  "bench_bg"
  "bench_bg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
